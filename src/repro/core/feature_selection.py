"""Exhaustive feature-set selection (paper Section 5.3).

The paper evaluates all 255 non-empty combinations of the eight weighting
schemes for the top-performing pruning algorithms (BLAST and RCNP), ranks
them by average F1 over the datasets and breaks ties by run-time.  This
module provides:

* :func:`enumerate_feature_sets` — the 255 combinations with stable ids;
* :func:`evaluate_feature_set` — effectiveness of one combination on one
  prepared dataset;
* :class:`FeatureSelectionStudy` — the full sweep producing the Table 3/4
  style ranking.

Note on ids: the paper numbers the combinations 1–255 but does not publish
the enumeration order; our ids enumerate subsets by increasing size and
lexicographic order over the canonical feature order (CF-IBF, RACCB, JS,
LCP, EJS, WJS, RS, NRS), so id values differ from the paper while the sets
themselves are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..datamodel import BlockCollection, CandidateSet, GroundTruth
from ..evaluation.metrics import EffectivenessReport, average_reports, evaluate_retained_mask
from ..utils.rng import SeedLike, spawn_seeds
from ..utils.timing import StageTimer
from ..weights import BlockStatistics, PAPER_FEATURES, all_feature_subsets
from ..weights.sparse import EntityBlockCSR
from .pipeline import GeneralizedSupervisedMetaBlocking
from .pruning import SupervisedPruningAlgorithm


@dataclass(frozen=True)
class FeatureSetCandidate:
    """One feature combination with its stable identifier."""

    set_id: int
    features: Tuple[str, ...]

    def label(self) -> str:
        """Human-readable label, e.g. ``"{CF-IBF, RACCB, RS, NRS}"``."""
        return "{" + ", ".join(self.features) + "}"


def enumerate_feature_sets(
    features: Sequence[str] = PAPER_FEATURES,
) -> List[FeatureSetCandidate]:
    """Enumerate every non-empty combination of ``features`` with stable ids."""
    return [
        FeatureSetCandidate(set_id=index + 1, features=subset)
        for index, subset in enumerate(all_feature_subsets(features))
    ]


@dataclass
class FeatureSetScore:
    """Aggregated performance of one feature set across datasets and runs."""

    candidate: FeatureSetCandidate
    recall: float
    precision: float
    f1: float
    runtime_seconds: float

    def as_row(self) -> Dict[str, Union[int, str, float]]:
        """Row representation used by the Table 3/4 reports."""
        return {
            "id": self.candidate.set_id,
            "feature_set": self.candidate.label(),
            "recall": self.recall,
            "precision": self.precision,
            "f1": self.f1,
            "runtime_seconds": self.runtime_seconds,
        }


@dataclass
class PreparedDataset:
    """A dataset prepared for repeated pipeline runs (blocks + truth)."""

    name: str
    blocks: BlockCollection
    candidates: CandidateSet
    ground_truth: GroundTruth
    stats: Optional[BlockStatistics] = None
    #: optional prebuilt entity x block CSR of ``blocks`` (the array blocking
    #: backend's handoff), inherited by the statistics built here
    csr: Optional["EntityBlockCSR"] = None

    def statistics(self) -> BlockStatistics:
        """Return (and cache) the block statistics, reusing a prepared CSR."""
        if self.stats is None:
            self.stats = BlockStatistics(self.blocks, csr=self.csr)
        return self.stats


def evaluate_feature_set(
    features: Sequence[str],
    dataset: PreparedDataset,
    pruning: Union[str, SupervisedPruningAlgorithm],
    training_size: int = 500,
    repetitions: int = 3,
    seed: SeedLike = 0,
    classifier_factory=None,
) -> Tuple[EffectivenessReport, float]:
    """Average effectiveness and run-time of one feature set on one dataset."""
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    pipeline = GeneralizedSupervisedMetaBlocking(
        feature_set=features,
        pruning=pruning,
        training_size=training_size,
        classifier_factory=classifier_factory,
        seed=seed,
    )
    seeds = spawn_seeds(seed, repetitions)
    reports = []
    runtime = 0.0
    for run_seed in seeds:
        result = pipeline.run(
            dataset.blocks,
            dataset.candidates,
            dataset.ground_truth,
            stats=dataset.statistics(),
            seed=run_seed,
        )
        reports.append(
            evaluate_retained_mask(
                result.retained_mask, result.labels, len(dataset.ground_truth)
            )
        )
        runtime += result.runtime_seconds
    return average_reports(reports), runtime / repetitions


class FeatureSelectionStudy:
    """Sweep feature combinations for one pruning algorithm over datasets.

    Parameters
    ----------
    datasets:
        The prepared datasets the combinations are averaged over.
    pruning:
        The pruning algorithm under study (name or instance).
    training_size, repetitions, seed, classifier_factory:
        Forwarded to :func:`evaluate_feature_set`.
    """

    def __init__(
        self,
        datasets: Sequence[PreparedDataset],
        pruning: Union[str, SupervisedPruningAlgorithm],
        training_size: int = 500,
        repetitions: int = 1,
        seed: SeedLike = 0,
        classifier_factory=None,
    ) -> None:
        if not datasets:
            raise ValueError("at least one dataset is required")
        self.datasets = list(datasets)
        self.pruning = pruning
        self.training_size = training_size
        self.repetitions = repetitions
        self.seed = seed
        self.classifier_factory = classifier_factory

    def score_feature_set(self, candidate: FeatureSetCandidate) -> FeatureSetScore:
        """Average one combination's performance over all datasets."""
        reports = []
        runtimes = []
        for dataset in self.datasets:
            report, runtime = evaluate_feature_set(
                candidate.features,
                dataset,
                self.pruning,
                training_size=self.training_size,
                repetitions=self.repetitions,
                seed=self.seed,
                classifier_factory=self.classifier_factory,
            )
            reports.append(report)
            runtimes.append(runtime)
        averaged = average_reports(reports)
        return FeatureSetScore(
            candidate=candidate,
            recall=averaged.recall,
            precision=averaged.precision,
            f1=averaged.f1,
            runtime_seconds=float(np.mean(runtimes)),
        )

    def run(
        self,
        feature_sets: Optional[Sequence[FeatureSetCandidate]] = None,
        top_k: int = 10,
    ) -> List[FeatureSetScore]:
        """Score the given (or all 255) combinations and return the top ``top_k`` by F1.

        Ties in F1 are broken by lower run-time, reproducing the paper's
        two-step selection (effectiveness first, efficiency second).
        """
        candidates = (
            list(feature_sets) if feature_sets is not None else enumerate_feature_sets()
        )
        scores = [self.score_feature_set(candidate) for candidate in candidates]
        scores.sort(key=lambda score: (-score.f1, score.runtime_seconds, score.candidate.set_id))
        return scores[:top_k]
