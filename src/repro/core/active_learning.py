"""BLOSS-style active sampling of training pairs.

The work closest to the paper is BLOSS (Dal Bianco et al., Inf. Syst. 2018),
which reduces the labelling effort of Supervised Meta-blocking by actively
*selecting* which candidate pairs to label instead of sampling them at
random.  The paper could not reproduce BLOSS and argues that its own 50-label
random sampling makes active learning unnecessary; this module provides a
faithful-in-spirit BLOSS-style selector so that the comparison can actually
be run:

1. candidate pairs are partitioned into similarity levels by their CF-IBF
   score (quantile bins);
2. inside every level, pairs are selected greedily so that each new pair has
   the lowest feature-space similarity to the already selected ones
   (rule-based diversity sampling);
3. selected pairs whose Jaccard (JS) weight is unusually high for their label
   are treated as outliers and dropped.

The selector returns candidate-pair indices; labels are then obtained from
the ground truth (standing in for the human oracle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..datamodel import CandidateSet, GroundTruth
from ..utils.rng import SeedLike, make_rng
from ..weights import BlockStatistics, get_scheme
from .features import FeatureMatrix


@dataclass(frozen=True)
class ActiveSample:
    """The outcome of active sampling: selected pair indices and their labels."""

    indices: np.ndarray
    labels: np.ndarray
    levels: np.ndarray

    def __len__(self) -> int:
        return int(self.indices.size)

    @property
    def positives(self) -> int:
        """Number of matching pairs in the sample."""
        return int(self.labels.sum())

    @property
    def negatives(self) -> int:
        """Number of non-matching pairs in the sample."""
        return len(self) - self.positives


class BlossSampler:
    """Select informative candidate pairs to label, BLOSS-style.

    Parameters
    ----------
    levels:
        Number of CF-IBF similarity levels (quantile bins).
    per_level:
        Number of pairs selected inside each level.
    outlier_fraction:
        Fraction of the selected non-matching pairs with the highest JS weight
        that are discarded as likely labelling noise (BLOSS's cleaning step).
    seed:
        Controls the tie-breaking order of the greedy selection.
    """

    def __init__(
        self,
        levels: int = 10,
        per_level: int = 5,
        outlier_fraction: float = 0.1,
        seed: SeedLike = 0,
    ) -> None:
        if levels < 1:
            raise ValueError("levels must be at least 1")
        if per_level < 1:
            raise ValueError("per_level must be at least 1")
        if not 0.0 <= outlier_fraction < 1.0:
            raise ValueError("outlier_fraction must be in [0, 1)")
        self.levels = levels
        self.per_level = per_level
        self.outlier_fraction = outlier_fraction
        self.seed = seed

    # -- selection ---------------------------------------------------------------
    def _assign_levels(self, cf_ibf: np.ndarray) -> np.ndarray:
        """Partition pairs into quantile bins of their CF-IBF score."""
        if np.allclose(cf_ibf, cf_ibf[0]):
            return np.zeros(cf_ibf.size, dtype=np.int64)
        quantiles = np.quantile(cf_ibf, np.linspace(0.0, 1.0, self.levels + 1)[1:-1])
        return np.searchsorted(quantiles, cf_ibf, side="right").astype(np.int64)

    def _greedy_diverse(
        self, level_indices: np.ndarray, features: np.ndarray, rng: np.random.Generator
    ) -> List[int]:
        """Pick ``per_level`` pairs maximising feature-space diversity."""
        if level_indices.size <= self.per_level:
            return level_indices.tolist()
        order = rng.permutation(level_indices.size)
        shuffled = level_indices[order]
        selected: List[int] = [int(shuffled[0])]
        # normalise features inside the level so no scheme dominates the distance
        level_features = features[shuffled]
        spread = level_features.max(axis=0) - level_features.min(axis=0)
        spread[spread == 0.0] = 1.0
        normalised = (level_features - level_features.min(axis=0)) / spread
        chosen_rows = [0]
        while len(selected) < self.per_level:
            chosen_matrix = normalised[chosen_rows]
            distances = np.min(
                np.linalg.norm(normalised[:, None, :] - chosen_matrix[None, :, :], axis=2),
                axis=1,
            )
            distances[chosen_rows] = -1.0
            best = int(np.argmax(distances))
            chosen_rows.append(best)
            selected.append(int(shuffled[best]))
        return selected

    def select(
        self,
        candidates: CandidateSet,
        stats: BlockStatistics,
        feature_matrix: FeatureMatrix,
        ground_truth: GroundTruth,
    ) -> ActiveSample:
        """Select and label an informative training sample.

        The ground truth plays the role of the human oracle: it only labels
        the pairs the sampler asks about.
        """
        if feature_matrix.n_pairs != len(candidates):
            raise ValueError("feature matrix does not match the candidate set")
        rng = make_rng(self.seed)

        cf_ibf = get_scheme("CF-IBF").compute(candidates, stats)[:, 0]
        js = get_scheme("JS").compute(candidates, stats)[:, 0]
        level_of = self._assign_levels(cf_ibf)

        selected: List[int] = []
        for level in range(level_of.max() + 1):
            level_indices = np.flatnonzero(level_of == level)
            if level_indices.size == 0:
                continue
            selected.extend(
                self._greedy_diverse(level_indices, feature_matrix.values, rng)
            )

        selected_array = np.array(sorted(set(selected)), dtype=np.int64)
        labels = ground_truth.labels_for(candidates)[selected_array]

        # BLOSS's cleaning step: drop the non-matching selections whose JS is
        # suspiciously high (they behave like matches and would confuse the
        # classifier if mislabelled).
        if self.outlier_fraction > 0.0 and np.any(~labels):
            negative_positions = np.flatnonzero(~labels)
            drop_count = int(np.floor(self.outlier_fraction * negative_positions.size))
            if drop_count > 0:
                js_of_negatives = js[selected_array[negative_positions]]
                worst = negative_positions[np.argsort(-js_of_negatives)[:drop_count]]
                keep_mask = np.ones(selected_array.size, dtype=bool)
                keep_mask[worst] = False
                selected_array = selected_array[keep_mask]
                labels = labels[keep_mask]

        return ActiveSample(
            indices=selected_array,
            labels=labels.astype(np.float64),
            levels=level_of[selected_array],
        )
