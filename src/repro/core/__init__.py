"""Generalized Supervised Meta-blocking: features, training, pruning, pipeline."""

from .active_learning import ActiveSample, BlossSampler
from .feature_selection import (
    FeatureSelectionStudy,
    FeatureSetCandidate,
    FeatureSetScore,
    PreparedDataset,
    enumerate_feature_sets,
    evaluate_feature_set,
)
from .features import FeatureMatrix, FeatureVectorGenerator, generate_features
from .pipeline import GeneralizedSupervisedMetaBlocking, MetaBlockingResult
from .pruning import (
    BinaryClassifierPruning,
    CARDINALITY_BASED_ALGORITHMS,
    PRUNING_ALGORITHMS,
    SupervisedBLAST,
    SupervisedCEP,
    SupervisedCNP,
    SupervisedPruningAlgorithm,
    SupervisedRCNP,
    SupervisedRWNP,
    SupervisedWEP,
    SupervisedWNP,
    VALIDITY_THRESHOLD,
    WEIGHT_BASED_ALGORITHMS,
    cep_budget,
    cnp_budget,
    get_pruning_algorithm,
)
from .training import TrainingSet, build_training_set

__all__ = [
    "ActiveSample",
    "BinaryClassifierPruning",
    "BlossSampler",
    "CARDINALITY_BASED_ALGORITHMS",
    "FeatureMatrix",
    "FeatureSelectionStudy",
    "FeatureSetCandidate",
    "FeatureSetScore",
    "FeatureVectorGenerator",
    "GeneralizedSupervisedMetaBlocking",
    "MetaBlockingResult",
    "PRUNING_ALGORITHMS",
    "PreparedDataset",
    "SupervisedBLAST",
    "SupervisedCEP",
    "SupervisedCNP",
    "SupervisedPruningAlgorithm",
    "SupervisedRCNP",
    "SupervisedRWNP",
    "SupervisedWEP",
    "SupervisedWNP",
    "TrainingSet",
    "VALIDITY_THRESHOLD",
    "WEIGHT_BASED_ALGORITHMS",
    "build_training_set",
    "cep_budget",
    "cnp_budget",
    "enumerate_feature_sets",
    "evaluate_feature_set",
    "generate_features",
    "get_pruning_algorithm",
]
