"""End-to-end Generalized Supervised Meta-blocking pipeline.

The pipeline chains the steps of paper Definition 2 on top of a prepared
block collection:

1. generate the feature vectors of every candidate pair (Section 4 schemes);
2. draw a small balanced training set and fit a probabilistic classifier;
3. score every candidate pair with its match probability;
4. apply a supervised pruning algorithm (Section 3) to the probabilities;
5. return the retained candidate pairs (the new block collection ``B'`` has
   one block per retained pair, so the candidate set *is* the result).

The run-time of the stages is recorded in a :class:`StageTimer`, mirroring
the paper's RT measure (feature generation + training + scoring + pruning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from ..blocking import PreparedBlocks, prepare_blocks
from ..datamodel import BlockCollection, CandidateSet, EntityCollection, GroundTruth
from ..ml import LogisticRegression, ProbabilisticClassifier, StandardScaler
from ..utils.rng import SeedLike, make_rng
from ..utils.timing import StageTimer
from ..weights import BLAST_FEATURE_SET, BlockStatistics
from .features import FeatureMatrix, FeatureVectorGenerator
from .pruning import SupervisedPruningAlgorithm, get_pruning_algorithm
from .training import TrainingSet, build_training_set

ClassifierFactory = Callable[[], ProbabilisticClassifier]


@dataclass
class MetaBlockingResult:
    """Everything produced by one pipeline run."""

    #: boolean mask over the input candidate pairs (True = retained)
    retained_mask: np.ndarray
    #: the retained candidate pairs (the refined comparison set)
    retained: CandidateSet
    #: match probability of every input candidate pair
    probabilities: np.ndarray
    #: ground-truth label of every input candidate pair
    labels: np.ndarray
    #: the training set the classifier was fit on
    training_set: TrainingSet
    #: per-stage run-time accounting
    timer: StageTimer
    #: the full feature matrix (kept for inspection; may be large)
    feature_matrix: Optional[FeatureMatrix] = None
    #: the input candidate pairs
    candidates: Optional[CandidateSet] = None
    #: the fitted classifier (frozen-model source for streaming sessions)
    classifier: Optional[ProbabilisticClassifier] = None
    #: the scaler the classifier was trained behind (None when unscaled)
    scaler: Optional[StandardScaler] = None
    #: the weighting-scheme names the classifier was trained on
    feature_set: Tuple[str, ...] = ()

    @property
    def retained_count(self) -> int:
        """Number of retained candidate pairs."""
        return int(self.retained_mask.sum())

    @property
    def runtime_seconds(self) -> float:
        """Total run-time (RT) of the run."""
        return self.timer.total


class GeneralizedSupervisedMetaBlocking:
    """The paper's primary contribution as a configurable pipeline.

    Parameters
    ----------
    feature_set:
        Weighting-scheme names forming the feature vector (default: the
        BLAST-optimal Formula 1 set).
    pruning:
        A pruning-algorithm name (``"BLAST"``, ``"RCNP"``, ...) or instance.
    classifier_factory:
        Zero-argument callable returning a fresh probabilistic classifier for
        every run (default: :class:`LogisticRegression`).
    scale_features:
        Standardise features before training/scoring (recommended — the
        schemes have wildly different ranges).
    training_size:
        Number of labelled instances for the balanced sampling policy.
    training_policy:
        ``"balanced"`` (paper default) or ``"proportional"`` ([21] baseline).
    positive_fraction:
        Positive fraction for the proportional policy.
    seed:
        Master seed for training-set sampling.
    backend:
        Feature-generation backend, ``"sparse"`` (vectorized, the default)
        or ``"loop"`` (the per-pair reference oracle); see
        :mod:`repro.weights.sparse`.
    workers:
        Worker-process count (or ``"auto"``) for the sharded execution
        engine of :mod:`repro.parallel`: feature generation's co-occurrence
        pass and the cardinality/BLAST pruning selections run across worker
        processes, bit-identically to the ``workers=1`` single-process path
        (the oracle).  Training and scoring always run in the parent — the
        single RNG entrypoint never leaves it (see :mod:`repro.utils.rng`).
    """

    def __init__(
        self,
        feature_set: Sequence[str] = BLAST_FEATURE_SET,
        pruning: Union[str, SupervisedPruningAlgorithm] = "BLAST",
        classifier_factory: Optional[ClassifierFactory] = None,
        scale_features: bool = True,
        training_size: int = 50,
        training_policy: str = "balanced",
        positive_fraction: float = 0.05,
        seed: SeedLike = 0,
        backend: str = "sparse",
        workers=1,
    ) -> None:
        from ..parallel.executor import resolve_workers

        self.workers = resolve_workers(workers)
        self.feature_generator = FeatureVectorGenerator(
            feature_set, backend=backend, workers=self.workers
        )
        self.pruning = (
            get_pruning_algorithm(pruning) if isinstance(pruning, str) else pruning
        )
        self.classifier_factory = classifier_factory or LogisticRegression
        self.scale_features = scale_features
        self.training_size = training_size
        self.training_policy = training_policy
        self.positive_fraction = positive_fraction
        self.seed = seed

    @property
    def feature_set(self) -> Sequence[str]:
        """The configured weighting-scheme names."""
        return self.feature_generator.feature_set

    @property
    def backend(self) -> str:
        """The configured feature-generation backend."""
        return self.feature_generator.backend

    # -- main entry points -----------------------------------------------------------
    def run(
        self,
        blocks: BlockCollection,
        candidates: CandidateSet,
        ground_truth: GroundTruth,
        stats: Optional[BlockStatistics] = None,
        feature_matrix: Optional[FeatureMatrix] = None,
        seed: SeedLike = None,
        keep_features: bool = False,
        executor=None,
    ) -> MetaBlockingResult:
        """Run the pipeline on a prepared block collection.

        Parameters
        ----------
        blocks, candidates:
            The (purged/filtered) block collection and its distinct pairs.
        ground_truth:
            Known duplicates, used only to label the training sample and to
            report per-pair labels for evaluation.
        stats, feature_matrix:
            Optional precomputed statistics/features; passing them lets
            experiment sweeps amortise the feature-generation cost.
        seed:
            Per-run sampling seed (falls back to the pipeline seed).
        keep_features:
            Attach the full feature matrix to the result.
        executor:
            Optional live :class:`repro.parallel.ParallelExecutor` shared
            with block preparation; when omitted and ``workers > 1``, one
            is created for the run and closed afterwards.
        """
        timer = StageTimer()
        statistics = stats if stats is not None else BlockStatistics(blocks)

        workers = executor.workers if executor is not None else self.workers
        owned_executor = None
        if workers > 1 and executor is None:
            from ..parallel.executor import ParallelExecutor

            executor = owned_executor = ParallelExecutor(workers)
        try:
            return self._run_stages(
                blocks,
                candidates,
                ground_truth,
                statistics,
                feature_matrix,
                seed,
                keep_features,
                timer,
                executor,
            )
        finally:
            if owned_executor is not None:
                owned_executor.close()

    def _run_stages(
        self,
        blocks,
        candidates,
        ground_truth,
        statistics,
        feature_matrix,
        seed,
        keep_features,
        timer,
        executor,
    ) -> MetaBlockingResult:
        if feature_matrix is None:
            feature_matrix = self.feature_generator.generate(
                candidates, statistics, timer=timer, executor=executor
            )
        elif feature_matrix.n_pairs != len(candidates):
            raise ValueError("precomputed feature matrix does not match the candidates")

        labels = ground_truth.labels_for(candidates)

        with timer.stage("training"):
            training_set = build_training_set(
                feature_matrix,
                candidates,
                ground_truth,
                size=self.training_size,
                policy=self.training_policy,
                positive_fraction=self.positive_fraction,
                seed=self.seed if seed is None else seed,
                labels=labels,
            )
            classifier = self.classifier_factory()
            if self.scale_features:
                scaler = StandardScaler().fit(training_set.features)
                training_features = scaler.transform(training_set.features)
            else:
                scaler = None
                training_features = training_set.features
            classifier.fit(training_features, training_set.labels)

        with timer.stage("scoring"):
            if scaler is not None:
                scored_features = scaler.transform(feature_matrix.values)
            else:
                scored_features = feature_matrix.values
            probabilities = classifier.predict_proba(scored_features)

        with timer.stage("pruning"):
            if executor is not None and executor.workers > 1:
                from ..parallel.pruning import parallel_prune

                retained_mask = parallel_prune(
                    self.pruning, probabilities, candidates, blocks, executor
                )
            else:
                retained_mask = self.pruning.prune(probabilities, candidates, blocks)

        retained = candidates.subset(retained_mask)
        return MetaBlockingResult(
            retained_mask=retained_mask,
            retained=retained,
            probabilities=probabilities,
            labels=labels,
            training_set=training_set,
            timer=timer,
            feature_matrix=feature_matrix if keep_features else None,
            candidates=candidates,
            classifier=classifier,
            scaler=scaler,
            feature_set=tuple(self.feature_set),
        )

    def run_on_collections(
        self,
        first: EntityCollection,
        second: Optional[EntityCollection],
        ground_truth: GroundTruth,
        seed: SeedLike = None,
        **prepare_kwargs,
    ) -> MetaBlockingResult:
        """Convenience wrapper: block preparation + pipeline in one call.

        Extra keyword arguments are forwarded to
        :func:`repro.blocking.prepare_blocks`.  The prepared CSR incidence
        structure is handed to the feature backend (no rebuild), and the
        preparation's wall-clock is recorded as the ``"block-preparation"``
        stage of the result's timer — so RT no longer silently starts at
        feature generation.

        With ``workers > 1`` a single :class:`~repro.parallel.ParallelExecutor`
        is shared by block preparation, feature generation and pruning, so
        the pool and the published shared-memory inputs are paid for once.
        """
        from ..parallel.executor import ParallelExecutor, resolve_workers

        # an explicit workers/executor kwarg for the preparation wins over
        # the pipeline's own knob (e.g. workers=1 forces single-process
        # preparation regardless of the pipeline's worker count)
        prepare_workers = resolve_workers(prepare_kwargs.get("workers", self.workers))
        owned_executor = None
        if prepare_workers > 1 and "executor" not in prepare_kwargs:
            prepare_kwargs.setdefault("workers", prepare_workers)
            owned_executor = ParallelExecutor(prepare_workers)
            prepare_kwargs["executor"] = owned_executor
        try:
            prepared: PreparedBlocks = prepare_blocks(first, second, **prepare_kwargs)
            result = self.run(
                prepared.blocks,
                prepared.candidates,
                ground_truth,
                stats=prepared.statistics(),
                seed=seed,
                executor=prepare_kwargs.get("executor"),
            )
        finally:
            if owned_executor is not None:
                owned_executor.close()
        if prepared.timer is not None:
            result.timer.add("block-preparation", prepared.timer.total)
        return result
