"""Experiment E8 — Figure 12 (distribution of matching probabilities).

The paper explains the counter-intuitive training-size behaviour (recall up,
precision down) by looking at the distribution of the classifier's matching
probabilities for duplicate vs non-duplicate candidate pairs as the training
set grows: larger training sets push *both* populations towards higher
probabilities, so more non-matching pairs clear the pruning thresholds.

This module reproduces the data behind Figure 12: for a chosen dataset (AbtBuy
in the paper) and a sweep of training sizes, it returns histograms of the
probabilities of the two populations plus the average and maximum pruning
thresholds across entities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pipeline import GeneralizedSupervisedMetaBlocking
from ..evaluation import format_table
from ..weights import BLAST_FEATURE_SET
from .common import ExperimentConfig, prepare_benchmark_dataset


@dataclass
class ProbabilityDensitySnapshot:
    """Probability distributions for one training-set size."""

    training_size: int
    #: histogram bin edges shared by both populations
    bin_edges: np.ndarray
    #: normalised histogram of the duplicate pairs' probabilities
    matching_density: np.ndarray
    #: normalised histogram of the non-matching pairs' probabilities
    non_matching_density: np.ndarray
    #: average per-entity pruning threshold (mean of the per-node averages)
    average_threshold: float
    #: maximum per-entity pruning threshold
    maximum_threshold: float
    #: quartiles of the matching / non-matching probability populations
    matching_quartiles: Tuple[float, float, float]
    non_matching_quartiles: Tuple[float, float, float]

    def as_row(self) -> Dict[str, float]:
        """Summary row for the report (medians and thresholds)."""
        return {
            "training_size": self.training_size,
            "match_median_p": self.matching_quartiles[1],
            "non_match_median_p": self.non_matching_quartiles[1],
            "avg_threshold": self.average_threshold,
            "max_threshold": self.maximum_threshold,
        }


def _per_entity_average_thresholds(probabilities: np.ndarray, candidates) -> np.ndarray:
    """Per-node averages of the valid probabilities (the WNP thresholds)."""
    total_nodes = candidates.index_space.total
    sums = np.zeros(total_nodes)
    counts = np.zeros(total_nodes)
    valid = probabilities >= 0.5
    np.add.at(sums, candidates.left[valid], probabilities[valid])
    np.add.at(counts, candidates.left[valid], 1)
    np.add.at(sums, candidates.right[valid], probabilities[valid])
    np.add.at(counts, candidates.right[valid], 1)
    populated = counts > 0
    return sums[populated] / counts[populated] if np.any(populated) else np.array([])


def run_probability_density(
    dataset_name: str = "AbtBuy",
    training_sizes: Sequence[int] = (50, 200, 500),
    config: Optional[ExperimentConfig] = None,
    bins: int = 20,
) -> List[ProbabilityDensitySnapshot]:
    """Compute the Figure 12 data for one dataset across training sizes."""
    config = config or ExperimentConfig()
    dataset = prepare_benchmark_dataset(dataset_name, seed=config.seed, scale=config.scale)
    stats = dataset.statistics()
    bin_edges = np.linspace(0.0, 1.0, bins + 1)

    snapshots: List[ProbabilityDensitySnapshot] = []
    for size in training_sizes:
        pipeline = GeneralizedSupervisedMetaBlocking(
            feature_set=BLAST_FEATURE_SET,
            pruning="BLAST",
            training_size=size,
            classifier_factory=config.classifier_factory(),
            seed=config.seed,
        )
        result = pipeline.run(
            dataset.blocks, dataset.candidates, dataset.ground_truth, stats=stats
        )
        probabilities = result.probabilities
        labels = result.labels.astype(bool)

        matching = probabilities[labels]
        non_matching = probabilities[~labels]
        matching_hist, _ = np.histogram(matching, bins=bin_edges, density=True)
        non_matching_hist, _ = np.histogram(non_matching, bins=bin_edges, density=True)
        thresholds = _per_entity_average_thresholds(probabilities, dataset.candidates)

        def _quartiles(values: np.ndarray) -> Tuple[float, float, float]:
            if values.size == 0:
                return (0.0, 0.0, 0.0)
            q1, q2, q3 = np.percentile(values, [25, 50, 75])
            return (float(q1), float(q2), float(q3))

        snapshots.append(
            ProbabilityDensitySnapshot(
                training_size=size,
                bin_edges=bin_edges,
                matching_density=matching_hist,
                non_matching_density=non_matching_hist,
                average_threshold=float(thresholds.mean()) if thresholds.size else 0.0,
                maximum_threshold=float(thresholds.max()) if thresholds.size else 0.0,
                matching_quartiles=_quartiles(matching),
                non_matching_quartiles=_quartiles(non_matching),
            )
        )
    return snapshots


def format_probability_density(snapshots: Sequence[ProbabilityDensitySnapshot]) -> str:
    """Render the summary rows of the Figure 12 data."""
    return format_table(
        [snapshot.as_row() for snapshot in snapshots],
        columns=[
            "training_size",
            "match_median_p",
            "non_match_median_p",
            "avg_threshold",
            "max_threshold",
        ],
        title="Figure 12 — matching-probability distributions vs training size",
    )


def probabilities_shift_upwards(snapshots: Sequence[ProbabilityDensitySnapshot]) -> bool:
    """Check the paper's observation that larger training sets push probabilities up.

    Compares the median matching probability of the smallest and largest
    training sizes.
    """
    ordered = sorted(snapshots, key=lambda snapshot: snapshot.training_size)
    if len(ordered) < 2:
        return True
    return ordered[-1].matching_quartiles[1] >= ordered[0].matching_quartiles[1] - 1e-9
