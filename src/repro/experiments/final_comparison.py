"""Experiment E9/E10 — Tables 5 and 7 (per-dataset final comparison).

Table 5 compares, per dataset, the final weight-based algorithms:

* BLAST — Formula 1 features, 50 balanced labelled instances;
* BCl1 — same 50 instances and the *new* feature set (ablation of the
  training-set size rule);
* BCl2 — the original Supervised Meta-blocking configuration of [21]
  (features {CF-IBF, RACCB, JS, LCP}, training set = 5 % of the positive
  ground-truth pairs plus as many negatives).

Table 7 is the cardinality-based counterpart with RCNP, CNP1 and CNP2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..evaluation import ExperimentRunner, format_table
from ..evaluation.runner import RunOutcome
from ..weights import BLAST_FEATURE_SET, ORIGINAL_FEATURE_SET, RCNP_FEATURE_SET
from ..core.pipeline import GeneralizedSupervisedMetaBlocking
from .common import ExperimentConfig, prepare_benchmark_datasets


def table5_pipelines(config: ExperimentConfig) -> Dict[str, GeneralizedSupervisedMetaBlocking]:
    """The three weight-based configurations of Table 5."""
    factory = config.classifier_factory()
    return {
        "BLAST": GeneralizedSupervisedMetaBlocking(
            feature_set=BLAST_FEATURE_SET,
            pruning="BLAST",
            training_size=50,
            classifier_factory=factory,
            seed=config.seed,
        ),
        "BCl1": GeneralizedSupervisedMetaBlocking(
            feature_set=BLAST_FEATURE_SET,
            pruning="BCl",
            training_size=50,
            classifier_factory=factory,
            seed=config.seed,
        ),
        "BCl2": GeneralizedSupervisedMetaBlocking(
            feature_set=ORIGINAL_FEATURE_SET,
            pruning="BCl",
            training_policy="proportional",
            classifier_factory=factory,
            seed=config.seed,
        ),
    }


def table7_pipelines(config: ExperimentConfig) -> Dict[str, GeneralizedSupervisedMetaBlocking]:
    """The three cardinality-based configurations of Table 7."""
    factory = config.classifier_factory()
    return {
        "RCNP": GeneralizedSupervisedMetaBlocking(
            feature_set=RCNP_FEATURE_SET,
            pruning="RCNP",
            training_size=50,
            classifier_factory=factory,
            seed=config.seed,
        ),
        "CNP1": GeneralizedSupervisedMetaBlocking(
            feature_set=RCNP_FEATURE_SET,
            pruning="CNP",
            training_size=50,
            classifier_factory=factory,
            seed=config.seed,
        ),
        "CNP2": GeneralizedSupervisedMetaBlocking(
            feature_set=ORIGINAL_FEATURE_SET,
            pruning="CNP",
            training_policy="proportional",
            classifier_factory=factory,
            seed=config.seed,
        ),
    }


@dataclass
class FinalComparisonResult:
    """Per-dataset outcomes for one of the two tables."""

    table: str
    outcomes: List[RunOutcome]

    def rows(self) -> List[Dict[str, object]]:
        """One row per (dataset, algorithm) with Re/Pr/F1/RT."""
        return [outcome.as_row() for outcome in self.outcomes]

    def by_algorithm(self) -> Dict[str, List[RunOutcome]]:
        """Group the outcomes per algorithm (column blocks of the tables)."""
        grouped: Dict[str, List[RunOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.algorithm, []).append(outcome)
        return grouped


def run_table5(config: Optional[ExperimentConfig] = None) -> FinalComparisonResult:
    """Table 5: BLAST vs BCl1 vs BCl2, per dataset."""
    config = config or ExperimentConfig()
    datasets = prepare_benchmark_datasets(config)
    runner = ExperimentRunner(repetitions=config.repetitions, seed=config.seed)
    outcomes = runner.run_matrix(table5_pipelines(config), datasets)
    return FinalComparisonResult(table="Table 5", outcomes=outcomes)


def run_table7(config: Optional[ExperimentConfig] = None) -> FinalComparisonResult:
    """Table 7: RCNP vs CNP1 vs CNP2, per dataset."""
    config = config or ExperimentConfig()
    datasets = prepare_benchmark_datasets(config)
    runner = ExperimentRunner(repetitions=config.repetitions, seed=config.seed)
    outcomes = runner.run_matrix(table7_pipelines(config), datasets)
    return FinalComparisonResult(table="Table 7", outcomes=outcomes)


def format_final_comparison(result: FinalComparisonResult) -> str:
    """Render the per-dataset rows of Table 5 or Table 7."""
    return format_table(
        result.rows(),
        columns=["dataset", "algorithm", "recall", "precision", "f1", "runtime_seconds"],
        title=f"{result.table} — per-dataset comparison",
    )


def paper_table5_reference() -> Dict[str, Dict[str, Dict[str, float]]]:
    """The paper's Table 5 (weight-based algorithms, per dataset)."""
    return {
        "BLAST": {
            "AbtBuy": {"recall": 0.8345, "precision": 0.2037, "f1": 0.3265},
            "DblpAcm": {"recall": 0.9511, "precision": 0.6509, "f1": 0.7690},
            "ScholarDblp": {"recall": 0.9638, "precision": 0.3418, "f1": 0.4988},
            "AmazonGP": {"recall": 0.7001, "precision": 0.1441, "f1": 0.2385},
            "ImdbTmdb": {"recall": 0.8223, "precision": 0.5756, "f1": 0.6726},
            "ImdbTvdb": {"recall": 0.7483, "precision": 0.2304, "f1": 0.3456},
            "TmdbTvdb": {"recall": 0.8466, "precision": 0.2477, "f1": 0.3770},
            "Movies": {"recall": 0.9151, "precision": 0.1300, "f1": 0.2221},
            "WalmartAmazon": {"recall": 0.9587, "precision": 0.0025, "f1": 0.0050},
        },
        "BCl1": {
            "AbtBuy": {"recall": 0.8345, "precision": 0.1821, "f1": 0.2981},
            "DblpAcm": {"recall": 0.9521, "precision": 0.5971, "f1": 0.7303},
            "ScholarDblp": {"recall": 0.9588, "precision": 0.3595, "f1": 0.5195},
            "AmazonGP": {"recall": 0.6265, "precision": 0.1607, "f1": 0.2572},
            "ImdbTmdb": {"recall": 0.7889, "precision": 0.6445, "f1": 0.7086},
            "ImdbTvdb": {"recall": 0.6966, "precision": 0.2616, "f1": 0.3785},
            "TmdbTvdb": {"recall": 0.6972, "precision": 0.3737, "f1": 0.4613},
            "Movies": {"recall": 0.9039, "precision": 0.0972, "f1": 0.1735},
            "WalmartAmazon": {"recall": 0.9500, "precision": 0.0020, "f1": 0.0041},
        },
        "BCl2": {
            "AbtBuy": {"recall": 0.8183, "precision": 0.2039, "f1": 0.3261},
            "DblpAcm": {"recall": 0.9513, "precision": 0.6130, "f1": 0.7425},
            "ScholarDblp": {"recall": 0.9303, "precision": 0.3921, "f1": 0.5401},
            "AmazonGP": {"recall": 0.7316, "precision": 0.1131, "f1": 0.1908},
            "ImdbTmdb": {"recall": 0.7872, "precision": 0.5969, "f1": 0.6604},
            "ImdbTvdb": {"recall": 0.7074, "precision": 0.2323, "f1": 0.3395},
            "TmdbTvdb": {"recall": 0.8172, "precision": 0.2312, "f1": 0.2991},
            "Movies": {"recall": 0.9100, "precision": 0.0239, "f1": 0.0465},
            "WalmartAmazon": {"recall": 0.5757, "precision": 0.0001, "f1": 0.0001},
        },
    }


def paper_table7_reference() -> Dict[str, Dict[str, Dict[str, float]]]:
    """The paper's Table 7 (cardinality-based algorithms, per dataset)."""
    return {
        "RCNP": {
            "AbtBuy": {"recall": 0.8405, "precision": 0.1764, "f1": 0.2914},
            "DblpAcm": {"recall": 0.9759, "precision": 0.6463, "f1": 0.7747},
            "ScholarDblp": {"recall": 0.9623, "precision": 0.3591, "f1": 0.5190},
            "AmazonGP": {"recall": 0.7358, "precision": 0.1264, "f1": 0.2148},
            "ImdbTmdb": {"recall": 0.8395, "precision": 0.3540, "f1": 0.4971},
            "ImdbTvdb": {"recall": 0.7465, "precision": 0.2325, "f1": 0.3498},
            "TmdbTvdb": {"recall": 0.8696, "precision": 0.1848, "f1": 0.2954},
            "Movies": {"recall": 0.9275, "precision": 0.0992, "f1": 0.1758},
            "WalmartAmazon": {"recall": 0.9122, "precision": 0.0050, "f1": 0.0100},
        },
        "CNP1": {
            "AbtBuy": {"recall": 0.8294, "precision": 0.1797, "f1": 0.2939},
            "DblpAcm": {"recall": 0.9613, "precision": 0.5984, "f1": 0.7355},
            "ScholarDblp": {"recall": 0.9218, "precision": 0.3745, "f1": 0.5095},
            "AmazonGP": {"recall": 0.7462, "precision": 0.1031, "f1": 0.1748},
            "ImdbTmdb": {"recall": 0.8045, "precision": 0.5471, "f1": 0.6394},
            "ImdbTvdb": {"recall": 0.7615, "precision": 0.1867, "f1": 0.2847},
            "TmdbTvdb": {"recall": 0.8641, "precision": 0.1720, "f1": 0.2487},
            "Movies": {"recall": 0.8200, "precision": 0.0090, "f1": 0.0177},
            "WalmartAmazon": {"recall": 0.7087, "precision": 0.0002, "f1": 0.0004},
        },
        "CNP2": {
            "AbtBuy": {"recall": 0.8347, "precision": 0.1895, "f1": 0.3081},
            "DblpAcm": {"recall": 0.9539, "precision": 0.6158, "f1": 0.7457},
            "ScholarDblp": {"recall": 0.9581, "precision": 0.2184, "f1": 0.3453},
            "AmazonGP": {"recall": 0.7742, "precision": 0.0848, "f1": 0.1514},
            "ImdbTmdb": {"recall": 0.8345, "precision": 0.4132, "f1": 0.5247},
            "ImdbTvdb": {"recall": 0.7641, "precision": 0.1764, "f1": 0.2754},
            "TmdbTvdb": {"recall": 0.8677, "precision": 0.1484, "f1": 0.2363},
            "Movies": {"recall": 0.9347, "precision": 0.0291, "f1": 0.0564},
            "WalmartAmazon": {"recall": 0.2332, "precision": 0.0001, "f1": 0.0002},
        },
    }
