"""Experiment E6 — Figures 8 and 10 (Generalized vs original Supervised Meta-blocking).

Figure 8 compares the effectiveness of the selected Generalized Supervised
Meta-blocking algorithms (BLAST with Formula 1, RCNP with Formula 2) against
the Supervised Meta-blocking baselines of [21] (BCl and CNP with the original
feature set), all trained on 500 balanced labelled instances.  Figure 10
compares their run-times on the two largest datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..evaluation import ExperimentRunner, average_over_datasets, format_measure_series, format_table
from ..evaluation.metrics import EffectivenessReport
from ..evaluation.runner import RunOutcome
from .common import (
    ExperimentConfig,
    bcl_pipeline,
    blast_pipeline,
    cnp_pipeline,
    prepare_benchmark_dataset,
    prepare_benchmark_datasets,
    rcnp_pipeline,
)


@dataclass
class AlgorithmComparisonResult:
    """Averages and per-dataset outcomes of the Figure 8 comparison."""

    averages: Dict[str, EffectivenessReport]
    outcomes: List[RunOutcome]

    def series(self) -> Dict[str, Dict[str, float]]:
        """The {algorithm: {measure: value}} series Figure 8 plots."""
        return {
            algorithm: {
                "recall": report.recall,
                "precision": report.precision,
                "f1": report.f1,
            }
            for algorithm, report in self.averages.items()
        }


def comparison_pipelines(config: ExperimentConfig) -> Dict[str, object]:
    """The four configurations Figure 8 compares."""
    return {
        "BCl": bcl_pipeline(config),
        "BLAST": blast_pipeline(config),
        "CNP": cnp_pipeline(config),
        "RCNP": rcnp_pipeline(config),
    }


def run_figure8(config: Optional[ExperimentConfig] = None) -> AlgorithmComparisonResult:
    """Figure 8: average effectiveness of BCl/BLAST/CNP/RCNP over all datasets."""
    config = config or ExperimentConfig()
    datasets = prepare_benchmark_datasets(config)
    runner = ExperimentRunner(repetitions=config.repetitions, seed=config.seed)
    outcomes = runner.run_matrix(comparison_pipelines(config), datasets)
    return AlgorithmComparisonResult(
        averages=average_over_datasets(outcomes), outcomes=outcomes
    )


def run_figure10(
    config: Optional[ExperimentConfig] = None,
    dataset_names: Sequence[str] = ("Movies", "WalmartAmazon"),
) -> List[Dict[str, object]]:
    """Figure 10: run-times of the four algorithms on the largest datasets."""
    config = config or ExperimentConfig()
    runner = ExperimentRunner(repetitions=max(1, config.repetitions // 2), seed=config.seed)
    rows: List[Dict[str, object]] = []
    for name in dataset_names:
        dataset = prepare_benchmark_dataset(name, seed=config.seed, scale=config.scale)
        for label, pipeline in comparison_pipelines(config).items():
            outcome = runner.run_pipeline(pipeline, dataset, label=label)
            rows.append(
                {
                    "dataset": name,
                    "algorithm": label,
                    "runtime_seconds": outcome.runtime_seconds,
                }
            )
    return rows


def format_figure8(result: AlgorithmComparisonResult) -> str:
    """Render the averaged series underlying Figure 8."""
    return format_measure_series(
        result.series(),
        title="Figure 8 — Supervised (BCl, CNP) vs Generalized Supervised (BLAST, RCNP)",
    )


def format_figure10(rows: Sequence[Dict[str, object]]) -> str:
    """Render the run-time comparison underlying Figure 10."""
    return format_table(
        rows,
        columns=["dataset", "algorithm", "runtime_seconds"],
        title="Figure 10 — run-time of the best algorithms on the largest datasets",
    )


def paper_figure8_reference() -> Dict[str, Dict[str, float]]:
    """Approximate averages read off Figure 8."""
    return {
        "BCl": {"recall": 0.87, "precision": 0.17, "f1": 0.26},
        "BLAST": {"recall": 0.88, "precision": 0.19, "f1": 0.29},
        "CNP": {"recall": 0.89, "precision": 0.18, "f1": 0.265},
        "RCNP": {"recall": 0.85, "precision": 0.25, "f1": 0.35},
    }
