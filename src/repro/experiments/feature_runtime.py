"""Experiment E5 — Figures 7 and 9 (run-time of the top-10 feature sets).

For the top feature sets of BLAST and RCNP, measures the time needed to
compute the features of every candidate pair and to score them with the
trained classifier (the paper excludes the common block-restructuring
overhead).  The paper runs this on the two largest datasets (Movies and
WalmartAmazon); the default configuration uses their generated counterparts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.features import FeatureVectorGenerator
from ..core.pipeline import GeneralizedSupervisedMetaBlocking
from ..core.feature_selection import PreparedDataset
from ..evaluation import format_table
from ..weights import BACKENDS, BLAST_FEATURE_SET, RCNP_FEATURE_SET, BlockStatistics
from .common import (
    ExperimentConfig,
    prepare_benchmark_dataset,
    prepare_dirty_dataset,
)

#: The ten feature sets of Table 3 (BLAST), in the paper's order.
BLAST_TOP10: Tuple[Tuple[str, ...], ...] = (
    ("CF-IBF", "RACCB", "JS", "RS"),
    ("CF-IBF", "RACCB", "JS", "NRS"),
    ("CF-IBF", "RACCB", "JS", "WJS"),
    ("CF-IBF", "RACCB", "RS", "NRS"),
    ("CF-IBF", "RACCB", "RS", "WJS"),
    ("CF-IBF", "RACCB", "NRS", "WJS"),
    ("CF-IBF", "JS", "RS", "WJS"),
    ("CF-IBF", "JS", "NRS", "WJS"),
    ("CF-IBF", "RS", "NRS", "WJS"),
    ("CF-IBF", "RACCB", "JS", "RS", "NRS", "WJS"),
)

#: The ten feature sets of Table 4 (RCNP), in the paper's order.
RCNP_TOP10: Tuple[Tuple[str, ...], ...] = (
    ("CF-IBF", "RACCB", "JS", "LCP", "RS"),
    ("CF-IBF", "RACCB", "JS", "LCP", "WJS"),
    ("CF-IBF", "RACCB", "LCP", "RS", "NRS"),
    ("CF-IBF", "JS", "LCP", "RS", "NRS"),
    ("CF-IBF", "RACCB", "JS", "LCP", "RS", "NRS"),
    ("CF-IBF", "RACCB", "JS", "LCP", "RS", "WJS"),
    ("CF-IBF", "RACCB", "JS", "LCP", "NRS", "WJS"),
    ("CF-IBF", "RACCB", "LCP", "RS", "NRS", "WJS"),
    ("CF-IBF", "JS", "LCP", "RS", "NRS", "WJS"),
    ("CF-IBF", "RACCB", "JS", "LCP", "RS", "NRS", "WJS"),
)


@dataclass
class FeatureRuntimeRow:
    """Measured run-time of one feature set on one dataset."""

    dataset: str
    feature_set: Tuple[str, ...]
    feature_seconds: float
    scoring_seconds: float
    backend: str = "loop"

    @property
    def total_seconds(self) -> float:
        """Feature generation plus scoring time (the quantity Figures 7/9 plot)."""
        return self.feature_seconds + self.scoring_seconds

    def as_row(self) -> Dict[str, object]:
        """Flatten for table rendering."""
        return {
            "dataset": self.dataset,
            "backend": self.backend,
            "feature_set": "{" + ", ".join(self.feature_set) + "}",
            "feature_seconds": self.feature_seconds,
            "scoring_seconds": self.scoring_seconds,
            "total_seconds": self.total_seconds,
        }


def measure_feature_set_runtime(
    feature_set: Sequence[str],
    dataset: PreparedDataset,
    config: ExperimentConfig,
) -> FeatureRuntimeRow:
    """Time feature generation + probability scoring for one feature set."""
    stats = dataset.statistics()
    generator = FeatureVectorGenerator(feature_set, backend=config.backend)

    start = time.perf_counter()
    matrix = generator.generate(dataset.candidates, stats)
    feature_seconds = time.perf_counter() - start

    pipeline = GeneralizedSupervisedMetaBlocking(
        feature_set=feature_set,
        pruning="BCl",
        training_size=config.training_size,
        classifier_factory=config.classifier_factory(),
        seed=config.seed,
        backend=config.backend,
    )
    result = pipeline.run(
        dataset.blocks,
        dataset.candidates,
        dataset.ground_truth,
        stats=stats,
        feature_matrix=matrix,
    )
    scoring_seconds = result.timer.get("scoring") + result.timer.get("training")
    return FeatureRuntimeRow(
        dataset=dataset.name,
        feature_set=tuple(feature_set),
        feature_seconds=feature_seconds,
        scoring_seconds=scoring_seconds,
        backend=config.backend,
    )


def run_feature_runtime(
    feature_sets: Sequence[Sequence[str]],
    config: Optional[ExperimentConfig] = None,
    dataset_names: Sequence[str] = ("Movies", "WalmartAmazon"),
) -> List[FeatureRuntimeRow]:
    """Measure the run-time of several feature sets on the largest datasets."""
    config = config or ExperimentConfig()
    rows: List[FeatureRuntimeRow] = []
    for name in dataset_names:
        dataset = prepare_benchmark_dataset(name, seed=config.seed, scale=config.scale)
        for feature_set in feature_sets:
            rows.append(measure_feature_set_runtime(feature_set, dataset, config))
    return rows


def run_figure7(config: Optional[ExperimentConfig] = None, **kwargs) -> List[FeatureRuntimeRow]:
    """Figure 7: run-times of BLAST's top-10 feature sets."""
    return run_feature_runtime(BLAST_TOP10, config, **kwargs)


def run_figure9(config: Optional[ExperimentConfig] = None, **kwargs) -> List[FeatureRuntimeRow]:
    """Figure 9: run-times of RCNP's top-10 feature sets."""
    return run_feature_runtime(RCNP_TOP10, config, **kwargs)


def format_feature_runtime(rows: Sequence[FeatureRuntimeRow], title: str) -> str:
    """Render the measured run-times (the data behind Figures 7/9)."""
    return format_table(
        [row.as_row() for row in rows],
        columns=[
            "dataset",
            "backend",
            "feature_set",
            "feature_seconds",
            "scoring_seconds",
            "total_seconds",
        ],
        title=title,
    )


# -- backend comparison ---------------------------------------------------------------

@dataclass
class BackendRuntimeRow:
    """Feature-generation time of one backend on one dataset."""

    dataset: str
    backend: str
    n_pairs: int
    feature_seconds: float

    def as_row(self) -> Dict[str, object]:
        """Flatten for table rendering."""
        return {
            "dataset": self.dataset,
            "backend": self.backend,
            "n_pairs": self.n_pairs,
            "feature_seconds": self.feature_seconds,
        }


def run_backend_comparison(
    feature_set: Sequence[str] = BLAST_FEATURE_SET,
    config: Optional[ExperimentConfig] = None,
    dataset_names: Sequence[str] = ("Movies", "WalmartAmazon"),
    backends: Sequence[str] = BACKENDS,
    dirty: bool = False,
) -> List[BackendRuntimeRow]:
    """Time pure feature generation per backend on each dataset.

    Every measurement uses a *fresh* :class:`BlockStatistics` so neither
    backend benefits from the other's cached structures (the loop backend's
    LCP cache, the sparse backend's CSR/co-occurrence cache).  With
    ``config.repetitions > 1`` the best of the repetitions is kept.
    """
    config = config or ExperimentConfig()
    prepare = prepare_dirty_dataset if dirty else prepare_benchmark_dataset
    rows: List[BackendRuntimeRow] = []
    for name in dataset_names:
        dataset = prepare(name, seed=config.seed, scale=config.scale)
        for backend in backends:
            generator = FeatureVectorGenerator(feature_set, backend=backend)
            best = float("inf")
            for _ in range(max(1, config.repetitions)):
                stats = BlockStatistics(dataset.blocks)
                start = time.perf_counter()
                generator.generate(dataset.candidates, stats)
                best = min(best, time.perf_counter() - start)
            rows.append(
                BackendRuntimeRow(
                    dataset=dataset.name,
                    backend=backend,
                    n_pairs=len(dataset.candidates),
                    feature_seconds=best,
                )
            )
    return rows


def backend_speedups(rows: Sequence[BackendRuntimeRow]) -> List[Dict[str, object]]:
    """Per-dataset speedup of the sparse backend over the loop backend."""
    by_dataset: Dict[str, Dict[str, BackendRuntimeRow]] = {}
    for row in rows:
        by_dataset.setdefault(row.dataset, {})[row.backend] = row
    speedups: List[Dict[str, object]] = []
    for dataset, per_backend in by_dataset.items():
        if "loop" not in per_backend or "sparse" not in per_backend:
            continue
        loop_seconds = per_backend["loop"].feature_seconds
        sparse_seconds = max(per_backend["sparse"].feature_seconds, 1e-12)
        speedups.append(
            {
                "dataset": dataset,
                "n_pairs": per_backend["loop"].n_pairs,
                "loop_seconds": loop_seconds,
                "sparse_seconds": per_backend["sparse"].feature_seconds,
                "speedup": loop_seconds / sparse_seconds,
            }
        )
    return speedups


def format_backend_comparison(rows: Sequence[BackendRuntimeRow], title: str) -> str:
    """Render the backend comparison plus the derived speedups."""
    measurements = format_table(
        [row.as_row() for row in rows],
        columns=["dataset", "backend", "n_pairs", "feature_seconds"],
        title=title,
    )
    ratios = format_table(
        backend_speedups(rows),
        columns=["dataset", "n_pairs", "loop_seconds", "sparse_seconds", "speedup"],
        title="Sparse-backend speedup over the loop backend",
    )
    return measurements + "\n\n" + ratios


def lcp_free_sets_are_faster(rows: Sequence[FeatureRuntimeRow]) -> bool:
    """Check the paper's headline claim: LCP-free feature sets run faster.

    Compares the mean total run-time of the sets containing LCP with the mean
    of those without it; returns ``True`` when the LCP-free sets are faster on
    average (the reason BLAST's Formula 1 halves the run-time of [21]).
    """
    with_lcp = [row.total_seconds for row in rows if "LCP" in row.feature_set]
    without_lcp = [row.total_seconds for row in rows if "LCP" not in row.feature_set]
    if not with_lcp or not without_lcp:
        return True
    return float(np.mean(without_lcp)) < float(np.mean(with_lcp))
