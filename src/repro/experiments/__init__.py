"""Experiment modules — one per table/figure of the paper's evaluation.

| Module | Paper artefact |
|---|---|
| :mod:`block_quality` | Tables 1 & 2 |
| :mod:`pruning_selection` | Figures 5 & 6 |
| :mod:`feature_selection` | Tables 3 & 4 |
| :mod:`feature_runtime` | Figures 7 & 9 |
| :mod:`algorithm_comparison` | Figures 8 & 10 |
| :mod:`training_size` | Figures 11, 13 & 14 |
| :mod:`probability_density` | Figure 12 |
| :mod:`final_comparison` | Tables 5 & 7 |
| :mod:`common_blocks` | Figures 15 & 16 |
| :mod:`scalability` | Figures 17 & 18, Table 6 |
"""

from .algorithm_comparison import (
    AlgorithmComparisonResult,
    format_figure8,
    format_figure10,
    paper_figure8_reference,
    run_figure8,
    run_figure10,
)
from .block_quality import (
    BlockQualityRow,
    format_block_quality,
    paper_table2_reference,
    run_block_quality,
)
from .common import (
    ExperimentConfig,
    FAST_DATASET_SUBSET,
    algorithm_pipeline,
    bcl_pipeline,
    blast_pipeline,
    cnp_pipeline,
    prepare_benchmark_dataset,
    prepare_benchmark_datasets,
    prepare_dirty_dataset,
    prepare_dirty_datasets,
    rcnp_pipeline,
)
from .common_blocks import (
    CommonBlockDistribution,
    format_common_blocks,
    low_redundancy_explains_low_recall,
    run_common_block_distribution,
)
from .feature_runtime import (
    BLAST_TOP10,
    BackendRuntimeRow,
    FeatureRuntimeRow,
    RCNP_TOP10,
    backend_speedups,
    format_backend_comparison,
    format_feature_runtime,
    lcp_free_sets_are_faster,
    run_backend_comparison,
    run_feature_runtime,
    run_figure7,
    run_figure9,
)
from .feature_selection import (
    FeatureSelectionResult,
    format_feature_selection,
    paper_table3_reference,
    paper_table4_reference,
    run_feature_selection,
    run_table3,
    run_table4,
)
from .final_comparison import (
    FinalComparisonResult,
    format_final_comparison,
    paper_table5_reference,
    paper_table7_reference,
    run_table5,
    run_table7,
)
from .probability_density import (
    ProbabilityDensitySnapshot,
    format_probability_density,
    probabilities_shift_upwards,
    run_probability_density,
)
from .pruning_selection import (
    PruningSelectionResult,
    format_pruning_selection,
    paper_figure5_reference,
    paper_figure6_reference,
    run_figure5,
    run_figure6,
    run_pruning_selection,
)
from .scalability import (
    FittedModelSnapshot,
    ScalabilityResult,
    format_scalability,
    format_speedups,
    format_table6,
    run_scalability,
    run_table6,
)
from .training_size import (
    FAST_TRAINING_SIZES,
    PAPER_TRAINING_SIZES,
    TrainingSizePoint,
    format_training_size,
    run_figure11,
    run_figure13,
    run_figure14,
    run_training_size_sweep,
    small_training_set_suffices,
)

__all__ = [
    "AlgorithmComparisonResult",
    "BLAST_TOP10",
    "BlockQualityRow",
    "CommonBlockDistribution",
    "ExperimentConfig",
    "FAST_DATASET_SUBSET",
    "FAST_TRAINING_SIZES",
    "FeatureRuntimeRow",
    "FeatureSelectionResult",
    "FinalComparisonResult",
    "FittedModelSnapshot",
    "PAPER_TRAINING_SIZES",
    "ProbabilityDensitySnapshot",
    "PruningSelectionResult",
    "RCNP_TOP10",
    "ScalabilityResult",
    "TrainingSizePoint",
    "algorithm_pipeline",
    "bcl_pipeline",
    "blast_pipeline",
    "cnp_pipeline",
    "format_block_quality",
    "format_common_blocks",
    "BackendRuntimeRow",
    "backend_speedups",
    "format_backend_comparison",
    "format_feature_runtime",
    "format_feature_selection",
    "format_figure10",
    "format_figure8",
    "format_final_comparison",
    "format_probability_density",
    "format_pruning_selection",
    "format_scalability",
    "format_speedups",
    "format_table6",
    "format_training_size",
    "lcp_free_sets_are_faster",
    "low_redundancy_explains_low_recall",
    "paper_figure5_reference",
    "paper_figure8_reference",
    "paper_figure6_reference",
    "paper_table2_reference",
    "paper_table3_reference",
    "paper_table4_reference",
    "paper_table5_reference",
    "paper_table7_reference",
    "prepare_benchmark_dataset",
    "prepare_benchmark_datasets",
    "prepare_dirty_dataset",
    "prepare_dirty_datasets",
    "probabilities_shift_upwards",
    "rcnp_pipeline",
    "run_block_quality",
    "run_common_block_distribution",
    "run_backend_comparison",
    "run_feature_runtime",
    "run_feature_selection",
    "run_figure10",
    "run_figure11",
    "run_figure13",
    "run_figure14",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_pruning_selection",
    "run_scalability",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_training_size_sweep",
    "small_training_set_suffices",
]
