"""Experiment E7 — Figures 11, 13 and 14 (effect of the training-set size).

Sweeps the number of labelled instances (20, then 50..500 in steps of 50 by
default) for BLAST (Figure 11), RCNP (Figure 14) and the BCl baseline
(Figure 13 compares BCl with BLAST), reporting the average recall, precision
and F1 across the benchmark datasets for every size.

The paper's headline finding — recall creeps up while precision and F1 drop
as the training set grows, so 50 labelled instances suffice — is exposed as
:func:`small_training_set_suffices` for the tests and benches to assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..evaluation import ExperimentRunner, average_over_datasets, format_table
from ..evaluation.metrics import EffectivenessReport
from ..weights import BLAST_FEATURE_SET, ORIGINAL_FEATURE_SET, RCNP_FEATURE_SET
from .common import ExperimentConfig, algorithm_pipeline, prepare_benchmark_datasets

#: The training-set sizes swept by the paper.
PAPER_TRAINING_SIZES: Tuple[int, ...] = (20, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500)

#: A shorter sweep for smoke runs and benches.
FAST_TRAINING_SIZES: Tuple[int, ...] = (20, 50, 200, 500)

#: The feature set each algorithm uses in this experiment.
_ALGORITHM_FEATURES = {
    "BLAST": BLAST_FEATURE_SET,
    "RCNP": RCNP_FEATURE_SET,
    "BCl": BLAST_FEATURE_SET,  # Figure 13 compares BCl1 (new features) with BLAST
    "BCl-original": ORIGINAL_FEATURE_SET,
}


@dataclass
class TrainingSizePoint:
    """Averaged measures for one (algorithm, training size) combination."""

    algorithm: str
    training_size: int
    report: EffectivenessReport

    def as_row(self) -> Dict[str, object]:
        """Flatten for table rendering."""
        return {
            "algorithm": self.algorithm,
            "training_size": self.training_size,
            "recall": self.report.recall,
            "precision": self.report.precision,
            "f1": self.report.f1,
        }


def run_training_size_sweep(
    algorithm: str,
    config: Optional[ExperimentConfig] = None,
    sizes: Sequence[int] = FAST_TRAINING_SIZES,
) -> List[TrainingSizePoint]:
    """Sweep the training-set size for one algorithm."""
    config = config or ExperimentConfig()
    feature_set = _ALGORITHM_FEATURES.get(algorithm, ORIGINAL_FEATURE_SET)
    datasets = prepare_benchmark_datasets(config)
    runner = ExperimentRunner(repetitions=config.repetitions, seed=config.seed)
    points: List[TrainingSizePoint] = []
    for size in sizes:
        pipeline = algorithm_pipeline(
            algorithm.replace("-original", ""),
            config,
            feature_set=feature_set,
            training_size=size,
        )
        outcomes = [runner.run_pipeline(pipeline, dataset) for dataset in datasets]
        averaged = average_over_datasets(outcomes)
        points.append(
            TrainingSizePoint(
                algorithm=algorithm,
                training_size=size,
                report=next(iter(averaged.values())),
            )
        )
    return points


def run_figure11(config: Optional[ExperimentConfig] = None, sizes: Sequence[int] = FAST_TRAINING_SIZES) -> List[TrainingSizePoint]:
    """Figure 11: training-size sweep for BLAST."""
    return run_training_size_sweep("BLAST", config, sizes)


def run_figure14(config: Optional[ExperimentConfig] = None, sizes: Sequence[int] = FAST_TRAINING_SIZES) -> List[TrainingSizePoint]:
    """Figure 14: training-size sweep for RCNP."""
    return run_training_size_sweep("RCNP", config, sizes)


def run_figure13(
    config: Optional[ExperimentConfig] = None, sizes: Sequence[int] = FAST_TRAINING_SIZES
) -> Dict[str, List[TrainingSizePoint]]:
    """Figure 13: recall/precision of BCl and BLAST as the training set grows."""
    return {
        "BCl": run_training_size_sweep("BCl", config, sizes),
        "BLAST": run_training_size_sweep("BLAST", config, sizes),
    }


def format_training_size(points: Sequence[TrainingSizePoint], title: str) -> str:
    """Render the sweep points (the series Figures 11/13/14 plot)."""
    return format_table(
        [point.as_row() for point in points],
        columns=["algorithm", "training_size", "recall", "precision", "f1"],
        title=title,
    )


def small_training_set_suffices(
    points: Sequence[TrainingSizePoint],
    small: int = 50,
    tolerance: float = 0.05,
) -> bool:
    """Check the paper's conclusion that ~50 labelled instances are enough.

    True when the smallest-but-one size (default 50) reaches an F1 within
    ``tolerance`` of — or above — the best F1 of the whole sweep.
    """
    by_size = {point.training_size: point.report.f1 for point in points}
    if small not in by_size:
        raise ValueError(f"size {small} missing from the sweep")
    best = max(by_size.values())
    return by_size[small] >= best - tolerance
