"""Experiment E11 — Figures 15 and 16 (common-block distribution of duplicates).

For every dataset, plots (as a table of series) the portion of ground-truth
duplicate pairs that share exactly ``x`` blocks in the prepared block
collection.  The bar at ``x = 0`` is the portion of duplicates missed by
blocking; the bar at ``x = 1`` is the portion that (Generalized) Supervised
Meta-blocking is most likely to lose, which is why datasets with a heavy
``x = 1`` bar (Figure 16) end up with recall below 0.9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..evaluation import format_table
from ..weights import BlockStatistics
from .common import ExperimentConfig, prepare_benchmark_dataset


@dataclass
class CommonBlockDistribution:
    """Distribution of shared-block counts over the duplicate pairs of one dataset."""

    dataset: str
    #: portion (in [0, 1]) of duplicate pairs per number of common blocks
    portions: Dict[int, float]

    def portion_at(self, common_blocks: int) -> float:
        """Portion of duplicates sharing exactly ``common_blocks`` blocks."""
        return self.portions.get(common_blocks, 0.0)

    @property
    def single_block_portion(self) -> float:
        """Portion of duplicates sharing exactly one block (recall bottleneck)."""
        return self.portion_at(1)

    @property
    def missed_portion(self) -> float:
        """Portion of duplicates sharing no block at all (blocking misses)."""
        return self.portion_at(0)

    def rows(self) -> List[Dict[str, float]]:
        """Rows of (common blocks, portion) pairs for rendering."""
        return [
            {"dataset": self.dataset, "common_blocks": key, "portion": value}
            for key, value in sorted(self.portions.items())
        ]


def run_common_block_distribution(
    dataset_names: Sequence[str],
    config: Optional[ExperimentConfig] = None,
) -> List[CommonBlockDistribution]:
    """Compute the Figure 15/16 distributions for the given datasets."""
    config = config or ExperimentConfig()
    distributions: List[CommonBlockDistribution] = []
    for name in dataset_names:
        dataset = prepare_benchmark_dataset(name, seed=config.seed, scale=config.scale)
        stats = BlockStatistics(dataset.blocks)
        counts: Dict[int, int] = {}
        total = len(dataset.ground_truth)
        for i, j in dataset.ground_truth:
            shared = stats.common_block_count(i, j)
            counts[shared] = counts.get(shared, 0) + 1
        portions = {key: value / total for key, value in counts.items()} if total else {}
        distributions.append(CommonBlockDistribution(dataset=name, portions=portions))
    return distributions


def format_common_blocks(distributions: Sequence[CommonBlockDistribution], title: str) -> str:
    """Render the distributions (the data behind Figures 15/16)."""
    rows: List[Dict[str, float]] = []
    for distribution in distributions:
        rows.extend(distribution.rows())
    return format_table(
        rows, columns=["dataset", "common_blocks", "portion"], title=title
    )


def low_redundancy_explains_low_recall(
    distributions: Sequence[CommonBlockDistribution],
    high_recall_names: Sequence[str],
    threshold: float = 0.10,
) -> bool:
    """Check the paper's explanation of the recall split (Section 5.4.2).

    Datasets whose duplicates rarely share a single block (portion below
    ``threshold``) should be exactly the high-recall datasets; the noisy
    datasets should exceed the threshold.
    """
    high_recall = set(high_recall_names)
    for distribution in distributions:
        low_redundancy = distribution.single_block_portion + distribution.missed_portion
        if distribution.dataset in high_recall and low_redundancy > 2 * threshold:
            return False
        if distribution.dataset not in high_recall and low_redundancy < threshold / 2:
            return False
    return True
