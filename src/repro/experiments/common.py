"""Shared infrastructure for the experiment modules.

Every experiment module regenerates one table or figure of the paper.  They
all need the same ingredients: benchmark datasets prepared through the
paper's blocking pipeline, the standard algorithm configurations (BLAST,
RCNP, and the Supervised Meta-blocking baselines BCl/CNP with the original
feature set), and multi-run averaging.  This module centralises those pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..blocking import prepare_blocks
from ..core.feature_selection import PreparedDataset
from ..core.pipeline import GeneralizedSupervisedMetaBlocking
from ..datasets import (
    CLEAN_CLEAN_ORDER,
    DIRTY_ORDER,
    load_benchmark,
    load_dirty_dataset,
)
from ..ml import LinearSVC, LogisticRegression
from ..utils.rng import SeedLike
from ..weights import BLAST_FEATURE_SET, ORIGINAL_FEATURE_SET, RCNP_FEATURE_SET

#: Datasets used by default in the fast experiment configurations: a subset
#: spanning easy (DblpAcm), hard (AbtBuy, AmazonGP) and large-ish (Movies)
#: benchmarks, so smoke runs finish quickly.
FAST_DATASET_SUBSET: Tuple[str, ...] = ("AbtBuy", "DblpAcm", "AmazonGP", "ImdbTmdb")


@dataclass
class ExperimentConfig:
    """Configuration shared by the experiment modules.

    Parameters
    ----------
    dataset_names:
        The Clean-Clean benchmarks to include (paper order by default).
    repetitions:
        Runs per configuration, each with a fresh training sample (the paper
        uses 10; the default here is 3 to keep the full suite fast).
    training_size:
        Labelled instances for the balanced policy.
    seed:
        Master seed for dataset generation and sampling.
    scale:
        Optional override of the dataset generation scale.
    classifier:
        ``"logistic"`` (default) or ``"svm"`` — the paper reports both give
        nearly identical results.
    backend:
        Feature-generation backend, ``"sparse"`` (vectorized, the default)
        or ``"loop"`` (the per-pair reference oracle); see
        :mod:`repro.weights.sparse`.
    blocking_backend:
        Block-preparation backend, ``"array"`` (vectorized, the default) or
        ``"loop"`` (the object-based reference oracle); see
        :mod:`repro.blocking.arrayops`.
    workers:
        Worker-process count (or ``"auto"``) for the sharded execution
        engine of :mod:`repro.parallel`; ``1`` (the default) is the exact
        single-process path and stays the oracle.
    """

    dataset_names: Sequence[str] = field(
        default_factory=lambda: tuple(CLEAN_CLEAN_ORDER)
    )
    repetitions: int = 3
    training_size: int = 500
    seed: SeedLike = 0
    scale: Optional[float] = None
    classifier: str = "logistic"
    backend: str = "sparse"
    blocking_backend: str = "array"
    workers: object = 1

    def classifier_factory(self) -> Callable:
        """Return the classifier factory matching the configuration."""
        if self.classifier == "logistic":
            return LogisticRegression
        if self.classifier == "svm":
            return lambda: LinearSVC(random_state=0)
        raise ValueError(f"unknown classifier {self.classifier!r}")

    @classmethod
    def fast(cls, **overrides) -> "ExperimentConfig":
        """A configuration sized for quick smoke runs and CI benches."""
        defaults = dict(
            dataset_names=FAST_DATASET_SUBSET,
            repetitions=2,
            training_size=50,
            seed=0,
        )
        defaults.update(overrides)
        return cls(**defaults)


def prepare_benchmark_dataset(
    name: str,
    seed: SeedLike = 0,
    scale: Optional[float] = None,
    blocking_backend: str = "array",
    workers=1,
) -> PreparedDataset:
    """Generate one Clean-Clean benchmark and run the blocking pipeline on it."""
    dataset = load_benchmark(name, seed=seed, scale=scale)
    prepared = prepare_blocks(
        dataset.first, dataset.second, backend=blocking_backend, workers=workers
    )
    return PreparedDataset(
        name=name,
        blocks=prepared.blocks,
        candidates=prepared.candidates,
        ground_truth=dataset.ground_truth,
        csr=prepared.csr,
    )


def prepare_benchmark_datasets(config: ExperimentConfig) -> List[PreparedDataset]:
    """Prepare every benchmark named in the configuration."""
    return [
        prepare_benchmark_dataset(
            name,
            seed=config.seed,
            scale=config.scale,
            blocking_backend=config.blocking_backend,
            workers=config.workers,
        )
        for name in config.dataset_names
    ]


def prepare_dirty_dataset(
    name: str,
    seed: SeedLike = 0,
    scale: Optional[float] = None,
    blocking_backend: str = "array",
    workers=1,
) -> PreparedDataset:
    """Generate one Dirty ER dataset and run Token Blocking + cleaning on it."""
    dataset = load_dirty_dataset(name, seed=seed, scale=scale)
    prepared = prepare_blocks(
        dataset.collection, None, backend=blocking_backend, workers=workers
    )
    return PreparedDataset(
        name=name,
        blocks=prepared.blocks,
        candidates=prepared.candidates,
        ground_truth=dataset.ground_truth,
        csr=prepared.csr,
    )


def prepare_dirty_datasets(
    names: Sequence[str] = DIRTY_ORDER,
    seed: SeedLike = 0,
    scale: Optional[float] = None,
    blocking_backend: str = "array",
) -> List[PreparedDataset]:
    """Prepare the D10K–D300K series (scaled) for the scalability experiments."""
    return [
        prepare_dirty_dataset(
            name, seed=seed, scale=scale, blocking_backend=blocking_backend
        )
        for name in names
    ]


# -- standard algorithm configurations -----------------------------------------------

def blast_pipeline(config: ExperimentConfig, training_size: Optional[int] = None) -> GeneralizedSupervisedMetaBlocking:
    """BLAST with the Formula 1 feature set {CF-IBF, RACCB, RS, NRS}."""
    return GeneralizedSupervisedMetaBlocking(
        feature_set=BLAST_FEATURE_SET,
        pruning="BLAST",
        training_size=training_size or config.training_size,
        classifier_factory=config.classifier_factory(),
        seed=config.seed,
        backend=config.backend,
        workers=config.workers,
    )


def rcnp_pipeline(config: ExperimentConfig, training_size: Optional[int] = None) -> GeneralizedSupervisedMetaBlocking:
    """RCNP with the Formula 2 feature set {CF-IBF, RACCB, JS, LCP, WJS}."""
    return GeneralizedSupervisedMetaBlocking(
        feature_set=RCNP_FEATURE_SET,
        pruning="RCNP",
        training_size=training_size or config.training_size,
        classifier_factory=config.classifier_factory(),
        seed=config.seed,
        backend=config.backend,
        workers=config.workers,
    )


def bcl_pipeline(
    config: ExperimentConfig,
    feature_set: Sequence[str] = ORIGINAL_FEATURE_SET,
    training_size: Optional[int] = None,
    training_policy: str = "balanced",
) -> GeneralizedSupervisedMetaBlocking:
    """BCl — the Supervised Meta-blocking [21] baseline (binary classifier)."""
    return GeneralizedSupervisedMetaBlocking(
        feature_set=feature_set,
        pruning="BCl",
        training_size=training_size or config.training_size,
        training_policy=training_policy,
        classifier_factory=config.classifier_factory(),
        seed=config.seed,
        backend=config.backend,
        workers=config.workers,
    )


def cnp_pipeline(
    config: ExperimentConfig,
    feature_set: Sequence[str] = ORIGINAL_FEATURE_SET,
    training_size: Optional[int] = None,
    training_policy: str = "balanced",
) -> GeneralizedSupervisedMetaBlocking:
    """CNP with the original [21] feature set — the cardinality baseline."""
    return GeneralizedSupervisedMetaBlocking(
        feature_set=feature_set,
        pruning="CNP",
        training_size=training_size or config.training_size,
        training_policy=training_policy,
        classifier_factory=config.classifier_factory(),
        seed=config.seed,
        backend=config.backend,
        workers=config.workers,
    )


def algorithm_pipeline(
    name: str,
    config: ExperimentConfig,
    feature_set: Optional[Sequence[str]] = None,
    training_size: Optional[int] = None,
) -> GeneralizedSupervisedMetaBlocking:
    """Build a pipeline for any pruning algorithm with a given feature set."""
    return GeneralizedSupervisedMetaBlocking(
        feature_set=feature_set or ORIGINAL_FEATURE_SET,
        pruning=name,
        training_size=training_size or config.training_size,
        classifier_factory=config.classifier_factory(),
        seed=config.seed,
        backend=config.backend,
        workers=config.workers,
    )
