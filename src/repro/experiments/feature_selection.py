"""Experiment E4 — Tables 3 and 4 (feature-set selection for BLAST and RCNP).

Runs the exhaustive search over the 255 combinations of the eight weighting
schemes (or a configurable subset for smoke runs) and reports the top-10
feature sets by F1 for each of the two selected pruning algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.feature_selection import (
    FeatureSelectionStudy,
    FeatureSetCandidate,
    FeatureSetScore,
    enumerate_feature_sets,
)
from ..evaluation import format_table
from ..weights import PAPER_FEATURES
from .common import ExperimentConfig, prepare_benchmark_datasets


@dataclass
class FeatureSelectionResult:
    """Top feature sets for one pruning algorithm."""

    algorithm: str
    top_sets: List[FeatureSetScore]

    def rows(self) -> List[Dict[str, object]]:
        """Rows in the layout of Tables 3/4."""
        return [score.as_row() for score in self.top_sets]


def run_feature_selection(
    algorithm: str,
    config: Optional[ExperimentConfig] = None,
    features: Sequence[str] = PAPER_FEATURES,
    max_set_size: Optional[int] = None,
    top_k: int = 10,
) -> FeatureSelectionResult:
    """Run the exhaustive feature-set search for ``algorithm`` ("BLAST"/"RCNP").

    Parameters
    ----------
    algorithm:
        The pruning algorithm under study.
    config:
        Experiment configuration (datasets, repetitions, training size).
    features:
        The feature pool (the paper's eight schemes by default).
    max_set_size:
        Optional cap on combination size; ``None`` evaluates all 2^n - 1
        combinations as the paper does, which is expensive — smoke runs and
        the benches cap it.
    top_k:
        How many top sets to report (the paper lists 10).
    """
    config = config or ExperimentConfig()
    datasets = prepare_benchmark_datasets(config)
    study = FeatureSelectionStudy(
        datasets=datasets,
        pruning=algorithm,
        training_size=config.training_size,
        repetitions=config.repetitions,
        seed=config.seed,
        classifier_factory=config.classifier_factory(),
    )
    candidates = enumerate_feature_sets(features)
    if max_set_size is not None:
        candidates = [c for c in candidates if len(c.features) <= max_set_size]
    top_sets = study.run(candidates, top_k=top_k)
    return FeatureSelectionResult(algorithm=algorithm, top_sets=top_sets)


def run_table3(config: Optional[ExperimentConfig] = None, **kwargs) -> FeatureSelectionResult:
    """Table 3: top-10 feature sets for BLAST."""
    return run_feature_selection("BLAST", config, **kwargs)


def run_table4(config: Optional[ExperimentConfig] = None, **kwargs) -> FeatureSelectionResult:
    """Table 4: top-10 feature sets for RCNP."""
    return run_feature_selection("RCNP", config, **kwargs)


def format_feature_selection(result: FeatureSelectionResult) -> str:
    """Render the top feature sets in the layout of Tables 3/4."""
    return format_table(
        result.rows(),
        columns=["id", "feature_set", "recall", "precision", "f1", "runtime_seconds"],
        title=f"Top feature sets for {result.algorithm} (Tables 3/4 layout)",
    )


def paper_table3_reference() -> Dict[str, float]:
    """The paper's Table 3 headline: BLAST's top-10 sets all score alike."""
    return {"recall": 0.8816, "precision": 0.1932, "f1": 0.2892}


def paper_table4_reference() -> Dict[str, float]:
    """The paper's Table 4 headline: RCNP's top-10 sets all score alike."""
    return {"recall": 0.850, "precision": 0.248, "f1": 0.353}
