"""Experiment E12 — Figures 17, 18 and Table 6 (scalability analysis).

Runs the four final algorithm configurations (BCl and CNP with the [21]
settings; BLAST and RCNP with the new feature sets and 50 labelled instances)
over the synthetic Dirty ER datasets D10K–D300K, with logistic regression as
the classifier, reporting:

* the effectiveness measures per dataset (Figure 17);
* the speedup relative to the smallest dataset (Figure 18);
* the fitted logistic-regression models of BLAST on D100K (Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.pipeline import GeneralizedSupervisedMetaBlocking
from ..evaluation import ExperimentRunner, format_table
from ..evaluation.runner import RunOutcome
from ..ml import LogisticRegression
from ..utils.timing import speedup as speedup_measure
from ..weights import BLAST_FEATURE_SET, ORIGINAL_FEATURE_SET, RCNP_FEATURE_SET
from ..datasets import DIRTY_ORDER
from .common import ExperimentConfig, prepare_dirty_datasets


def scalability_pipelines(config: ExperimentConfig) -> Dict[str, GeneralizedSupervisedMetaBlocking]:
    """The four configurations of the scalability study (all logistic regression)."""
    return {
        "BLAST": GeneralizedSupervisedMetaBlocking(
            feature_set=BLAST_FEATURE_SET,
            pruning="BLAST",
            training_size=50,
            classifier_factory=LogisticRegression,
            seed=config.seed,
            backend=config.backend,
        ),
        "BCl": GeneralizedSupervisedMetaBlocking(
            feature_set=ORIGINAL_FEATURE_SET,
            pruning="BCl",
            training_policy="proportional",
            classifier_factory=LogisticRegression,
            seed=config.seed,
            backend=config.backend,
        ),
        "RCNP": GeneralizedSupervisedMetaBlocking(
            feature_set=RCNP_FEATURE_SET,
            pruning="RCNP",
            training_size=50,
            classifier_factory=LogisticRegression,
            seed=config.seed,
            backend=config.backend,
        ),
        "CNP": GeneralizedSupervisedMetaBlocking(
            feature_set=ORIGINAL_FEATURE_SET,
            pruning="CNP",
            training_policy="proportional",
            classifier_factory=LogisticRegression,
            seed=config.seed,
            backend=config.backend,
        ),
    }


@dataclass
class ScalabilityResult:
    """Per-dataset outcomes plus candidate-pair counts for the speedup measure."""

    outcomes: List[RunOutcome]
    candidate_counts: Dict[str, int]

    def rows(self) -> List[Dict[str, object]]:
        """One row per (dataset, algorithm) with Re/Pr/F1/RT (Figure 17 data)."""
        return [outcome.as_row() for outcome in self.outcomes]

    def speedups(self, baseline_dataset: Optional[str] = None) -> List[Dict[str, object]]:
        """The Figure 18 speedup series, relative to the smallest dataset."""
        by_algorithm: Dict[str, Dict[str, RunOutcome]] = {}
        for outcome in self.outcomes:
            by_algorithm.setdefault(outcome.algorithm, {})[outcome.dataset] = outcome

        datasets_in_order = [
            name for name in DIRTY_ORDER if name in self.candidate_counts
        ] or sorted(self.candidate_counts)
        baseline = baseline_dataset or datasets_in_order[0]

        rows: List[Dict[str, object]] = []
        for algorithm, per_dataset in by_algorithm.items():
            if baseline not in per_dataset:
                continue
            base_outcome = per_dataset[baseline]
            for dataset in datasets_in_order[1:]:
                if dataset not in per_dataset:
                    continue
                value = speedup_measure(
                    self.candidate_counts[baseline],
                    self.candidate_counts[dataset],
                    max(base_outcome.runtime_seconds, 1e-9),
                    max(per_dataset[dataset].runtime_seconds, 1e-9),
                )
                rows.append(
                    {"algorithm": algorithm, "dataset": dataset, "speedup": value}
                )
        return rows


def run_scalability(
    config: Optional[ExperimentConfig] = None,
    dataset_names: Sequence[str] = DIRTY_ORDER,
    scale: Optional[float] = None,
) -> ScalabilityResult:
    """Run the Figure 17/18 scalability study over the Dirty ER datasets."""
    config = config or ExperimentConfig(repetitions=3)
    datasets = prepare_dirty_datasets(
        dataset_names,
        seed=config.seed,
        scale=scale,
        blocking_backend=config.blocking_backend,
    )
    runner = ExperimentRunner(repetitions=config.repetitions, seed=config.seed)
    outcomes = runner.run_matrix(scalability_pipelines(config), datasets)
    candidate_counts = {dataset.name: len(dataset.candidates) for dataset in datasets}
    return ScalabilityResult(outcomes=outcomes, candidate_counts=candidate_counts)


@dataclass
class FittedModelSnapshot:
    """One fitted logistic-regression model (Table 6 row block)."""

    iteration: int
    coefficients: Dict[str, float]
    intercept: float
    retained_pairs: int
    detected_duplicates: int

    def as_row(self) -> Dict[str, object]:
        """Flatten for table rendering."""
        row: Dict[str, object] = {"iteration": self.iteration}
        row.update(self.coefficients)
        row["intercept"] = self.intercept
        row["retained_pairs"] = self.retained_pairs
        row["detected_duplicates"] = self.detected_duplicates
        return row


def run_table6(
    dataset_name: str = "D100K",
    iterations: int = 3,
    config: Optional[ExperimentConfig] = None,
    scale: Optional[float] = None,
) -> List[FittedModelSnapshot]:
    """Table 6: the logistic-regression models BLAST fits on D100K.

    Each iteration draws a different 25+25 training sample, so the fitted
    coefficients vary noticeably — the paper uses this to explain the variance
    of the scalability measurements.
    """
    config = config or ExperimentConfig()
    dataset = prepare_dirty_datasets(
        [dataset_name],
        seed=config.seed,
        scale=scale,
        blocking_backend=config.blocking_backend,
    )[0]
    stats = dataset.statistics()

    snapshots: List[FittedModelSnapshot] = []
    for iteration in range(iterations):
        classifier_holder: List[LogisticRegression] = []

        def factory() -> LogisticRegression:
            model = LogisticRegression()
            classifier_holder.append(model)
            return model

        pipeline = GeneralizedSupervisedMetaBlocking(
            feature_set=BLAST_FEATURE_SET,
            pruning="BLAST",
            training_size=50,
            classifier_factory=factory,
            seed=config.seed,
        )
        result = pipeline.run(
            dataset.blocks,
            dataset.candidates,
            dataset.ground_truth,
            stats=stats,
            seed=config.seed + iteration if isinstance(config.seed, int) else iteration,
        )
        model = classifier_holder[-1]
        columns = pipeline.feature_generator.columns
        coefficients = {
            column: float(value) for column, value in zip(columns, model.coef_)
        }
        detected = int(np.sum(result.retained_mask & result.labels.astype(bool)))
        snapshots.append(
            FittedModelSnapshot(
                iteration=iteration + 1,
                coefficients=coefficients,
                intercept=model.intercept_,
                retained_pairs=result.retained_count,
                detected_duplicates=detected,
            )
        )
    return snapshots


def format_scalability(result: ScalabilityResult) -> str:
    """Render the Figure 17 effectiveness rows."""
    return format_table(
        result.rows(),
        columns=["dataset", "algorithm", "recall", "precision", "f1", "runtime_seconds"],
        title="Figure 17 — scalability over the Dirty ER datasets",
    )


def format_speedups(result: ScalabilityResult) -> str:
    """Render the Figure 18 speedup rows."""
    return format_table(
        result.speedups(),
        columns=["algorithm", "dataset", "speedup"],
        title="Figure 18 — speedup relative to the smallest dataset",
    )


def format_table6(snapshots: Sequence[FittedModelSnapshot]) -> str:
    """Render the Table 6 fitted-model rows."""
    return format_table(
        [snapshot.as_row() for snapshot in snapshots],
        title="Table 6 — BLAST's logistic-regression models across iterations",
    )
