"""Experiment E2/E3 — Figures 5 and 6 (pruning-algorithm selection).

Compares, with the original [21] feature set and 500 balanced labelled
instances, the weight-based algorithms (BCl, WEP, WNP, RWNP, BLAST — Figure 5)
and the cardinality-based algorithms (CEP, CNP, RCNP — Figure 6), reporting
the average recall, precision and F1 over the benchmark datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.pruning import CARDINALITY_BASED_ALGORITHMS, WEIGHT_BASED_ALGORITHMS
from ..evaluation import ExperimentRunner, average_over_datasets, format_measure_series
from ..evaluation.metrics import EffectivenessReport
from ..evaluation.runner import RunOutcome
from ..weights import ORIGINAL_FEATURE_SET
from .common import ExperimentConfig, algorithm_pipeline, prepare_benchmark_datasets


@dataclass
class PruningSelectionResult:
    """Averaged measures per algorithm, plus the per-dataset outcomes."""

    averages: Dict[str, EffectivenessReport]
    outcomes: List[RunOutcome]

    def series(self) -> Dict[str, Dict[str, float]]:
        """The {algorithm: {measure: value}} series the figures plot."""
        return {
            algorithm: {
                "recall": report.recall,
                "precision": report.precision,
                "f1": report.f1,
            }
            for algorithm, report in self.averages.items()
        }


def run_pruning_selection(
    config: Optional[ExperimentConfig] = None,
    algorithms: Optional[Sequence[str]] = None,
) -> PruningSelectionResult:
    """Run the Figure 5/6 comparison for the given algorithms.

    By default all weight- and cardinality-based algorithms are compared; pass
    ``WEIGHT_BASED_ALGORITHMS`` or ``CARDINALITY_BASED_ALGORITHMS`` to
    reproduce one figure at a time.
    """
    config = config or ExperimentConfig()
    names = list(algorithms) if algorithms is not None else (
        WEIGHT_BASED_ALGORITHMS + CARDINALITY_BASED_ALGORITHMS
    )
    datasets = prepare_benchmark_datasets(config)
    pipelines = {
        name: algorithm_pipeline(name, config, feature_set=ORIGINAL_FEATURE_SET)
        for name in names
    }
    runner = ExperimentRunner(repetitions=config.repetitions, seed=config.seed)
    outcomes = runner.run_matrix(pipelines, datasets)
    return PruningSelectionResult(
        averages=average_over_datasets(outcomes), outcomes=outcomes
    )


def run_figure5(config: Optional[ExperimentConfig] = None) -> PruningSelectionResult:
    """Figure 5: the weight-based algorithms (plus the BCl baseline)."""
    return run_pruning_selection(config, WEIGHT_BASED_ALGORITHMS)


def run_figure6(config: Optional[ExperimentConfig] = None) -> PruningSelectionResult:
    """Figure 6: the cardinality-based algorithms."""
    return run_pruning_selection(config, CARDINALITY_BASED_ALGORITHMS)


def format_pruning_selection(result: PruningSelectionResult, title: str) -> str:
    """Render the averaged series in the layout underlying Figures 5/6."""
    return format_measure_series(result.series(), title=title)


def paper_figure5_reference() -> Dict[str, Dict[str, float]]:
    """Approximate averages read off Figure 5 (weight-based algorithms)."""
    return {
        "BCl": {"recall": 0.87, "precision": 0.155, "f1": 0.255},
        "WEP": {"recall": 0.82, "precision": 0.25, "f1": 0.366},
        "WNP": {"recall": 0.87, "precision": 0.20, "f1": 0.305},
        "RWNP": {"recall": 0.81, "precision": 0.26, "f1": 0.374},
        "BLAST": {"recall": 0.88, "precision": 0.19, "f1": 0.285},
    }


def paper_figure6_reference() -> Dict[str, Dict[str, float]]:
    """Approximate averages read off Figure 6 (cardinality-based algorithms)."""
    return {
        "CEP": {"recall": 0.86, "precision": 0.17, "f1": 0.26},
        "CNP": {"recall": 0.88, "precision": 0.18, "f1": 0.27},
        "RCNP": {"recall": 0.85, "precision": 0.245, "f1": 0.35},
    }
