"""Experiment E1 — Table 1 (dataset characteristics) and Table 2 (block quality).

Regenerates, for every benchmark dataset, the size statistics of Table 1 and
the recall / precision / F1 of the input block collections of Table 2 (Token
Blocking followed by Block Purging and Block Filtering).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..blocking import prepare_blocks
from ..datasets import CLEAN_CLEAN_ORDER, get_profile, load_benchmark
from ..evaluation import evaluate_candidates, format_table
from ..utils.rng import SeedLike


@dataclass
class BlockQualityRow:
    """One dataset's row across Tables 1 and 2."""

    dataset: str
    entities_first: int
    entities_second: int
    duplicates: int
    candidates: int
    recall: float
    precision: float
    f1: float

    def as_row(self) -> Dict[str, float]:
        """Flatten for table rendering."""
        return {
            "dataset": self.dataset,
            "|E1|": self.entities_first,
            "|E2|": self.entities_second,
            "|D|": self.duplicates,
            "|C|": self.candidates,
            "recall": self.recall,
            "precision": self.precision,
            "f1": self.f1,
        }


def run_block_quality(
    dataset_names: Sequence[str] = CLEAN_CLEAN_ORDER,
    seed: SeedLike = 0,
    scale: Optional[float] = None,
    blocking_backend: str = "array",
) -> List[BlockQualityRow]:
    """Compute Table 1 + Table 2 rows for the given benchmarks."""
    rows: List[BlockQualityRow] = []
    for name in dataset_names:
        dataset = load_benchmark(name, seed=seed, scale=scale)
        prepared = prepare_blocks(dataset.first, dataset.second, backend=blocking_backend)
        report = evaluate_candidates(prepared.candidates, dataset.ground_truth)
        rows.append(
            BlockQualityRow(
                dataset=name,
                entities_first=len(dataset.first),
                entities_second=len(dataset.second),
                duplicates=len(dataset.ground_truth),
                candidates=len(prepared.candidates),
                recall=report.recall,
                precision=report.precision,
                f1=report.f1,
            )
        )
    return rows


def format_block_quality(rows: Sequence[BlockQualityRow]) -> str:
    """Render the rows in the layout of Tables 1 and 2."""
    return format_table(
        [row.as_row() for row in rows],
        columns=["dataset", "|E1|", "|E2|", "|D|", "|C|", "recall", "precision", "f1"],
        title="Tables 1 & 2 — input block collections (generated benchmarks)",
    )


def paper_table2_reference() -> Dict[str, Dict[str, float]]:
    """The paper's Table 2 values, for paper-vs-measured reports."""
    return {
        "AbtBuy": {"recall": 0.948, "precision": 2.78e-2, "f1": 5.40e-2},
        "DblpAcm": {"recall": 0.999, "precision": 4.81e-2, "f1": 9.18e-2},
        "ScholarDblp": {"recall": 0.998, "precision": 2.80e-3, "f1": 5.58e-3},
        "AmazonGP": {"recall": 0.840, "precision": 1.29e-2, "f1": 2.54e-2},
        "ImdbTmdb": {"recall": 0.988, "precision": 1.78e-2, "f1": 3.50e-2},
        "ImdbTvdb": {"recall": 0.985, "precision": 8.90e-3, "f1": 1.76e-2},
        "TmdbTvdb": {"recall": 0.989, "precision": 5.50e-3, "f1": 1.09e-2},
        "Movies": {"recall": 0.976, "precision": 8.59e-4, "f1": 1.72e-3},
        "WalmartAmazon": {"recall": 1.000, "precision": 4.22e-5, "f1": 8.44e-5},
    }
