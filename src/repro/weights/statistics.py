"""Block co-occurrence statistics.

All weighting schemes of the paper (Section 4) are functions of the block
co-occurrence patterns of a candidate pair:

* ``B_i`` — the set of blocks containing entity ``e_i``;
* ``|b|`` — the number of entities in block ``b``;
* ``||b||`` — the number of comparisons block ``b`` spawns;
* ``||B||`` — the total number of comparisons in the collection;
* ``||e_i||`` — the summed cardinality of the blocks of ``e_i``.

:class:`BlockStatistics` precomputes these quantities once per block
collection so that feature generation touches only per-pair set
intersections, the irreducible part of the cost.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from ..datamodel import BlockCollection, CandidateSet
from .sparse import (
    EntityBlockCSR,
    PairCooccurrence,
    PairCooccurrenceCache,
    build_entity_block_csr,
    compute_pair_cooccurrence,
    sparse_local_candidate_counts,
)


class BlockStatistics:
    """Precomputed per-entity and per-block statistics of a block collection.

    Parameters
    ----------
    blocks:
        The (purged/filtered) block collection the candidate pairs come from.
    csr:
        Optional prebuilt entity x block CSR incidence structure of
        ``blocks`` (the array blocking backend hands it over through
        :meth:`repro.blocking.PreparedBlocks.statistics`), so the sparse
        feature backend never rebuilds it.  Built lazily when omitted.
    """

    def __init__(
        self, blocks: BlockCollection, csr: Optional[EntityBlockCSR] = None
    ) -> None:
        self.blocks = blocks
        self.num_blocks = len(blocks)
        if csr is not None and (
            csr.num_blocks != len(blocks)
            or csr.num_entities != blocks.index_space.total
        ):
            raise ValueError(
                "precomputed CSR does not match the block collection "
                f"({csr.num_entities} x {csr.num_blocks} vs "
                f"{blocks.index_space.total} x {len(blocks)})"
            )

        # per-block quantities
        self.block_sizes = np.array(
            [block.size() for block in blocks], dtype=np.float64
        )
        self.block_cardinalities = np.array(
            [block.cardinality() for block in blocks], dtype=np.float64
        )
        self.total_cardinality = float(self.block_cardinalities.sum())
        # per-block inverse weights shared by both feature backends (the
        # max(..., 1) guard mirrors sum_inverse_cardinality/sum_inverse_size)
        self.inverse_block_cardinalities = 1.0 / np.maximum(self.block_cardinalities, 1.0)
        self.inverse_block_sizes = 1.0 / np.maximum(self.block_sizes, 1.0)

        # per-entity block memberships as frozensets for fast intersections
        membership: Dict[int, Set[int]] = {}
        for block_id, block in enumerate(blocks):
            for node in block.all_entities():
                membership.setdefault(node, set()).add(block_id)
        self._entity_blocks: Dict[int, FrozenSet[int]] = {
            node: frozenset(block_ids) for node, block_ids in membership.items()
        }

        total_nodes = blocks.index_space.total
        self.blocks_per_entity = np.zeros(total_nodes, dtype=np.float64)
        self.entity_cardinality = np.zeros(total_nodes, dtype=np.float64)
        self.entity_inv_cardinality = np.zeros(total_nodes, dtype=np.float64)
        self.entity_inv_size = np.zeros(total_nodes, dtype=np.float64)
        for node, block_ids in self._entity_blocks.items():
            ids = list(block_ids)
            self.blocks_per_entity[node] = len(ids)
            self.entity_cardinality[node] = float(self.block_cardinalities[ids].sum())
            with np.errstate(divide="ignore"):
                self.entity_inv_cardinality[node] = float(
                    np.sum(1.0 / np.maximum(self.block_cardinalities[ids], 1.0))
                )
                self.entity_inv_size[node] = float(
                    np.sum(1.0 / np.maximum(self.block_sizes[ids], 1.0))
                )

        self._lcp: Optional[np.ndarray] = None
        self._lcp_sparse: Optional[np.ndarray] = None
        self._csr: Optional[EntityBlockCSR] = csr
        self._pair_cache = PairCooccurrenceCache()

    # -- sparse backend --------------------------------------------------------
    def csr(self) -> EntityBlockCSR:
        """The entity x block incidence structure (built lazily, cached)."""
        if self._csr is None:
            self._csr = build_entity_block_csr(self.blocks)
        return self._csr

    def pair_cooccurrence(self, candidates: CandidateSet) -> PairCooccurrence:
        """Batched co-occurrence aggregates for every pair of ``candidates``.

        The result is cached per candidate set (weakly referenced), so all
        schemes of one feature-matrix generation — and repeated generations
        over the same candidates, as in the feature-selection sweeps — share
        a single intersection pass.
        """
        return self._pair_cache.get(
            candidates,
            lambda: compute_pair_cooccurrence(
                self.csr(),
                self.inverse_block_cardinalities,
                self.inverse_block_sizes,
                candidates.left,
                candidates.right,
            ),
        )

    # -- parallel-engine seeding -----------------------------------------------
    def seed_pair_cooccurrence(
        self, candidates: CandidateSet, aggregates: PairCooccurrence
    ) -> None:
        """Install externally computed per-pair aggregates for ``candidates``.

        Used by :mod:`repro.parallel.features` after its sharded
        intersection pass; subsequent scheme computations over the same
        candidate-set object read the cache.
        """
        self._pair_cache.seed(candidates, aggregates)

    def seed_local_candidate_counts(self, counts: np.ndarray) -> None:
        """Install externally computed LCP counts (sparse-backend cache)."""
        self._lcp_sparse = np.asarray(counts, dtype=np.float64)

    # -- memberships -----------------------------------------------------------
    def blocks_of(self, node: int) -> FrozenSet[int]:
        """The block ids containing ``node`` (empty when the node has none)."""
        return self._entity_blocks.get(node, frozenset())

    def common_blocks(self, i: int, j: int) -> FrozenSet[int]:
        """The blocks shared by nodes ``i`` and ``j`` (``B_i ∩ B_j``)."""
        blocks_i = self.blocks_of(i)
        blocks_j = self.blocks_of(j)
        if len(blocks_i) > len(blocks_j):
            blocks_i, blocks_j = blocks_j, blocks_i
        return blocks_i & blocks_j

    # -- aggregates over common blocks -----------------------------------------
    def common_block_count(self, i: int, j: int) -> int:
        """``|B_i ∩ B_j|`` — the raw number of shared blocks."""
        return len(self.common_blocks(i, j))

    def sum_inverse_cardinality(self, block_ids: FrozenSet[int]) -> float:
        """``Σ 1/||b||`` over the given blocks (RACCB/WJS numerator)."""
        if not block_ids:
            return 0.0
        ids = list(block_ids)
        return float(np.sum(1.0 / np.maximum(self.block_cardinalities[ids], 1.0)))

    def sum_inverse_size(self, block_ids: FrozenSet[int]) -> float:
        """``Σ 1/|b|`` over the given blocks (RS/NRS numerator)."""
        if not block_ids:
            return 0.0
        ids = list(block_ids)
        return float(np.sum(1.0 / np.maximum(self.block_sizes[ids], 1.0)))

    # -- LCP ---------------------------------------------------------------------
    def local_candidate_counts(self) -> np.ndarray:
        """``LCP(e_i)`` — the number of distinct candidates of every entity.

        Computed, as in the reference implementation, by iterating over the
        blocks of every entity and collecting its distinct co-occurring
        entities.  This is deliberately the expensive formulation the paper's
        run-time analysis relies on; the result is cached after the first call.
        """
        if self._lcp is None:
            total_nodes = self.blocks.index_space.total
            counts = np.zeros(total_nodes, dtype=np.float64)
            neighbours: Dict[int, Set[int]] = {}
            for block in self.blocks:
                if block.is_bilateral:
                    for node in block.entities_first:
                        neighbours.setdefault(node, set()).update(block.entities_second)
                    for node in block.entities_second:
                        neighbours.setdefault(node, set()).update(block.entities_first)
                else:
                    members = block.entities_first
                    member_set = set(members)
                    for node in members:
                        others = member_set - {node}
                        neighbours.setdefault(node, set()).update(others)
            for node, candidate_set in neighbours.items():
                counts[node] = len(candidate_set)
            self._lcp = counts
        return self._lcp

    def local_candidate_counts_sparse(self) -> np.ndarray:
        """Vectorized counterpart of :meth:`local_candidate_counts`.

        Kept as an independent computation (own cache) so the equivalence
        tests genuinely compare the two formulations rather than a shared
        memoised result.
        """
        if self._lcp_sparse is None:
            self._lcp_sparse = sparse_local_candidate_counts(self.blocks)
        return self._lcp_sparse

    # -- summaries ----------------------------------------------------------------
    def describe(self) -> Dict[str, float]:
        """Summary statistics used in reports and tests."""
        return {
            "blocks": float(self.num_blocks),
            "total_cardinality": self.total_cardinality,
            "avg_blocks_per_entity": float(
                self.blocks_per_entity[self.blocks_per_entity > 0].mean()
            )
            if np.any(self.blocks_per_entity > 0)
            else 0.0,
            "max_block_size": float(self.block_sizes.max()) if self.num_blocks else 0.0,
        }
