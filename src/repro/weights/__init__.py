"""Weighting schemes and block co-occurrence statistics."""

from .registry import (
    BLAST_FEATURE_SET,
    ORIGINAL_FEATURE_SET,
    PAPER_FEATURES,
    RCNP_FEATURE_SET,
    SCHEME_CLASSES,
    all_feature_subsets,
    feature_width,
    get_scheme,
    get_schemes,
)
from .schemes import (
    CFIBFScheme,
    CommonBlocksScheme,
    EnhancedJaccardScheme,
    JaccardScheme,
    LocalCandidatesScheme,
    NormalizedReciprocalSizesScheme,
    RACCBScheme,
    ReciprocalSizesScheme,
    WeightedJaccardScheme,
    WeightingScheme,
)
from .statistics import BlockStatistics

__all__ = [
    "BLAST_FEATURE_SET",
    "BlockStatistics",
    "CFIBFScheme",
    "CommonBlocksScheme",
    "EnhancedJaccardScheme",
    "JaccardScheme",
    "LocalCandidatesScheme",
    "NormalizedReciprocalSizesScheme",
    "ORIGINAL_FEATURE_SET",
    "PAPER_FEATURES",
    "RACCBScheme",
    "RCNP_FEATURE_SET",
    "ReciprocalSizesScheme",
    "SCHEME_CLASSES",
    "WeightedJaccardScheme",
    "WeightingScheme",
    "all_feature_subsets",
    "feature_width",
    "get_scheme",
    "get_schemes",
]
