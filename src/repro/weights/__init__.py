"""Weighting schemes and block co-occurrence statistics.

Feature backends
----------------

Every weighting scheme ships two interchangeable implementations, selected
with the ``backend`` argument threaded through
:class:`repro.core.features.FeatureVectorGenerator`,
:func:`repro.core.features.generate_features`,
:class:`repro.core.pipeline.GeneralizedSupervisedMetaBlocking` and the CLI's
``--backend`` flag:

* ``"loop"`` — the per-pair reference implementation: a readable Python loop
  intersecting per-entity frozensets of block ids.  It mirrors the paper's
  formulas line by line and serves as the correctness oracle (and remains
  the default of the low-level :class:`FeatureVectorGenerator`).
* ``"sparse"`` — the vectorized production backend and the default of the
  pipeline, :class:`repro.experiments.ExperimentConfig` and the CLI
  (:mod:`repro.weights.sparse`): the block collection is flattened once into
  an entity x block CSR incidence structure and the per-pair co-occurrence
  aggregates of *all* candidate pairs are computed in batched NumPy
  operations (sorted-array row intersections + ``bincount`` reductions),
  typically an order of magnitude faster on the scalability workloads.

Use ``loop`` when auditing formulas or debugging a scheme; use ``sparse``
whenever run-time matters (large candidate sets, the feature-runtime and
scalability benchmarks).  Both backends are guaranteed to produce
``np.allclose``-identical feature matrices: randomized Hypothesis tests and
frozen golden fixtures in ``tests/weights/test_backend_equivalence.py`` and
``tests/weights/test_golden_features.py`` guard the equivalence for every
registered scheme, so an optimisation that shifts a score fails the suite.
"""

from .registry import (
    BLAST_FEATURE_SET,
    ORIGINAL_FEATURE_SET,
    PAPER_FEATURES,
    RCNP_FEATURE_SET,
    SCHEME_CLASSES,
    all_feature_subsets,
    feature_width,
    get_scheme,
    get_schemes,
)
from .schemes import (
    CFIBFScheme,
    CommonBlocksScheme,
    EnhancedJaccardScheme,
    JaccardScheme,
    LocalCandidatesScheme,
    NormalizedReciprocalSizesScheme,
    RACCBScheme,
    ReciprocalSizesScheme,
    WeightedJaccardScheme,
    WeightingScheme,
)
from .sparse import (
    BACKENDS,
    EntityBlockCSR,
    PairCooccurrence,
    build_entity_block_csr,
    compute_pair_cooccurrence,
    resolve_backend,
)
from .statistics import BlockStatistics

__all__ = [
    "BACKENDS",
    "BLAST_FEATURE_SET",
    "BlockStatistics",
    "CFIBFScheme",
    "CommonBlocksScheme",
    "EnhancedJaccardScheme",
    "EntityBlockCSR",
    "JaccardScheme",
    "LocalCandidatesScheme",
    "NormalizedReciprocalSizesScheme",
    "ORIGINAL_FEATURE_SET",
    "PAPER_FEATURES",
    "PairCooccurrence",
    "RACCBScheme",
    "RCNP_FEATURE_SET",
    "ReciprocalSizesScheme",
    "SCHEME_CLASSES",
    "WeightedJaccardScheme",
    "WeightingScheme",
    "all_feature_subsets",
    "build_entity_block_csr",
    "compute_pair_cooccurrence",
    "feature_width",
    "get_scheme",
    "get_schemes",
    "resolve_backend",
]
