"""Vectorized sparse feature-generation backend.

The reference ("loop") implementations of the weighting schemes iterate over
candidate pairs in Python, intersecting per-entity frozensets of block ids.
That per-pair interpreter overhead dominates the run-time of feature
generation (the paper's RT analysis, Figures 7/9).  This module provides the
batched counterpart: the block collection is flattened once into an
entity x block incidence structure in CSR form, and the three per-pair
aggregates every co-occurrence scheme is built from —

* ``|B_i ∩ B_j|`` — the number of shared blocks,
* ``Σ_{b ∈ B_i ∩ B_j} 1/||b||`` — the RACCB/WJS numerator,
* ``Σ_{b ∈ B_i ∩ B_j} 1/|b|`` — the RS/NRS numerator —

are computed for *all* candidate pairs at once with sorted-array row
intersections (NumPy only, no per-pair Python).  The schemes then combine
these aggregates with precomputed per-entity vectors using plain array
arithmetic.

The loop implementations remain the reference oracle; the equivalence tests
in ``tests/weights/test_backend_equivalence.py`` assert that both backends
produce ``np.allclose``-identical feature matrices on randomized and golden
inputs.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..datamodel import BlockCollection

#: The available feature-generation backends.  ``"loop"`` is the readable
#: per-pair reference implementation; ``"sparse"`` is the vectorized batched
#: implementation built on the CSR incidence structure below.
BACKENDS: Tuple[str, ...] = ("loop", "sparse")

#: Number of candidate pairs processed per chunk by the batched intersection
#: (bounds the size of the expanded membership arrays).
DEFAULT_CHUNK_PAIRS: int = 1 << 16


def resolve_backend(backend: str) -> str:
    """Validate a backend name, returning it unchanged.

    Raises
    ------
    ValueError
        With the list of known backends when the name is unknown.
    """
    if backend not in BACKENDS:
        known = ", ".join(repr(name) for name in BACKENDS)
        raise ValueError(f"unknown feature backend {backend!r}; expected one of {known}")
    return backend


@dataclass(frozen=True)
class EntityBlockCSR:
    """The entity x block incidence structure in CSR form.

    Row ``n`` (an entity node id) spans ``indices[indptr[n]:indptr[n+1]]``,
    the sorted block ids containing the entity.  Entities absent from every
    block are empty rows.
    """

    #: row pointers, shape ``(num_entities + 1,)``
    indptr: np.ndarray
    #: sorted block ids per row, shape ``(total memberships,)``
    indices: np.ndarray
    #: number of blocks (column count)
    num_blocks: int

    @property
    def num_entities(self) -> int:
        """Number of rows (node ids) in the incidence structure."""
        return int(self.indptr.size - 1)


@dataclass(frozen=True)
class PairCooccurrence:
    """The per-pair co-occurrence aggregates of one candidate set.

    All arrays have shape ``(n_pairs,)`` and align with the candidate set's
    ``left``/``right`` arrays.
    """

    #: ``|B_i ∩ B_j|`` per pair
    common: np.ndarray
    #: ``Σ 1/||b||`` over the shared blocks per pair
    sum_inverse_cardinality: np.ndarray
    #: ``Σ 1/|b|`` over the shared blocks per pair
    sum_inverse_size: np.ndarray


def entity_block_csr_from_memberships(
    nodes: np.ndarray,
    block_ids: np.ndarray,
    total_nodes: int,
    num_blocks: int,
    assume_unique: bool = False,
) -> EntityBlockCSR:
    """Build the CSR incidence structure from flat membership arrays.

    Parameters
    ----------
    nodes, block_ids:
        Parallel arrays with one entry per (entity, block) assignment.
    total_nodes, num_blocks:
        Dimensions of the incidence structure.
    assume_unique:
        Skip deduplication when the (node, block) pairs are known distinct
        (e.g. when handed over by the array blocking backend).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    block_ids = np.asarray(block_ids, dtype=np.int64)
    if nodes.size and num_blocks:
        # (node, block) keys, sorted by node then block id
        keys = nodes * np.int64(num_blocks) + block_ids
        keys = np.sort(keys) if assume_unique else np.unique(keys)
        nodes = keys // num_blocks
        block_ids = keys % num_blocks
    else:
        nodes = np.empty(0, dtype=np.int64)
        block_ids = np.empty(0, dtype=np.int64)

    counts = np.bincount(nodes, minlength=total_nodes)
    indptr = np.zeros(total_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return EntityBlockCSR(indptr=indptr, indices=block_ids, num_blocks=num_blocks)


def build_entity_block_csr(blocks: BlockCollection) -> EntityBlockCSR:
    """Flatten a block collection into the CSR incidence structure.

    Membership duplicates (an entity listed twice in one block) are collapsed,
    matching the set semantics of the loop backend.
    """
    block_ids, nodes = blocks.membership_arrays()
    return entity_block_csr_from_memberships(
        nodes, block_ids, blocks.index_space.total, len(blocks)
    )


def _gather_rows(csr: EntityBlockCSR, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows of ``nodes``.

    Returns ``(row_positions, block_ids)``: for every membership of every
    requested node, the position of the node in ``nodes`` and the block id.
    Rows appear in request order with block ids sorted within a row, so the
    combined key ``row_position * num_blocks + block_id`` is globally sorted.
    """
    counts = csr.indptr[nodes + 1] - csr.indptr[nodes]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    rows = np.repeat(np.arange(nodes.size, dtype=np.int64), counts)
    row_starts = np.zeros(nodes.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=row_starts[1:])
    offsets = np.arange(total, dtype=np.int64) - np.repeat(row_starts, counts)
    flat = np.repeat(csr.indptr[nodes], counts) + offsets
    return rows, csr.indices[flat]


def compute_pair_cooccurrence(
    csr: EntityBlockCSR,
    inverse_cardinalities: np.ndarray,
    inverse_sizes: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
) -> PairCooccurrence:
    """Batched per-pair co-occurrence aggregates over all candidate pairs.

    For each chunk of pairs the per-entity block rows are expanded into
    ``pair_position * num_blocks + block_id`` keys (sorted by construction),
    intersected with :func:`np.intersect1d`, and the surviving memberships are
    aggregated back per pair with ``np.bincount`` — no per-pair Python.

    Parameters
    ----------
    csr:
        The entity x block incidence structure.
    inverse_cardinalities, inverse_sizes:
        Per-block ``1/max(||b||, 1)`` and ``1/max(|b|, 1)`` weight vectors.
    left, right:
        The candidate set's parallel node-id arrays.
    chunk_pairs:
        Pairs per chunk; bounds the expanded-array memory footprint.
    """
    n_pairs = int(left.size)
    common = np.zeros(n_pairs, dtype=np.float64)
    sum_inv_cardinality = np.zeros(n_pairs, dtype=np.float64)
    sum_inv_size = np.zeros(n_pairs, dtype=np.float64)
    if n_pairs == 0 or csr.num_blocks == 0 or csr.indices.size == 0:
        return PairCooccurrence(common, sum_inv_cardinality, sum_inv_size)

    num_blocks = np.int64(csr.num_blocks)
    for start in range(0, n_pairs, chunk_pairs):
        stop = min(start + chunk_pairs, n_pairs)
        chunk_len = stop - start
        rows_left, blocks_left = _gather_rows(csr, left[start:stop])
        rows_right, blocks_right = _gather_rows(csr, right[start:stop])
        keys_left = rows_left * num_blocks + blocks_left
        keys_right = rows_right * num_blocks + blocks_right
        shared = np.intersect1d(keys_left, keys_right, assume_unique=True)
        if shared.size == 0:
            continue
        pair_positions = shared // num_blocks
        shared_blocks = shared % num_blocks
        common[start:stop] = np.bincount(pair_positions, minlength=chunk_len)
        sum_inv_cardinality[start:stop] = np.bincount(
            pair_positions,
            weights=inverse_cardinalities[shared_blocks],
            minlength=chunk_len,
        )
        sum_inv_size[start:stop] = np.bincount(
            pair_positions, weights=inverse_sizes[shared_blocks], minlength=chunk_len
        )
    return PairCooccurrence(common, sum_inv_cardinality, sum_inv_size)


class PairCooccurrenceCache:
    """Single-entry cache of :class:`PairCooccurrence` per candidate set.

    All schemes of one feature-matrix generation — and repeated generations
    over the same candidate-set object — share a single intersection pass.
    The candidate set is held weakly, so the cache never prolongs its life.
    Both the batch :class:`repro.weights.BlockStatistics` and the streaming
    :class:`repro.incremental.IncrementalStatistics` delegate here.
    """

    def __init__(self) -> None:
        self._entry: Optional[Tuple[weakref.ref, PairCooccurrence]] = None

    def get(
        self, candidates, compute: Callable[[], PairCooccurrence]
    ) -> PairCooccurrence:
        """Return the cached aggregates for ``candidates`` or compute them."""
        if self._entry is not None:
            ref, cached = self._entry
            if ref() is candidates:
                return cached
        result = compute()
        self._entry = (weakref.ref(candidates), result)
        return result

    def seed(self, candidates, result: PairCooccurrence) -> None:
        """Install precomputed aggregates for ``candidates``.

        The parallel feature engine (:mod:`repro.parallel.features`)
        computes the aggregates across worker processes and seeds them
        here, so every scheme of the subsequent generation reads the cache
        instead of re-running the intersection pass.
        """
        self._entry = (weakref.ref(candidates), result)


#: Upper bound on the number of expanded (node, neighbour) keys buffered
#: before a dedup flush in :func:`sparse_local_candidate_counts`.
DEFAULT_LCP_CHUNK_KEYS: int = 1 << 22


def _expanded_block_keys(block, total_nodes: int, chunk_keys: int):
    """Yield the directed ``node * total + neighbour`` keys of one block.

    Large blocks are expanded in row slices so no single array exceeds
    roughly ``chunk_keys`` entries.
    """
    if block.is_bilateral:
        first = np.asarray(block.entities_first, dtype=np.int64)
        second = np.asarray(block.entities_second, dtype=np.int64)
        if first.size == 0 or second.size == 0:
            return
        rows_per_slice = max(1, chunk_keys // max(1, int(second.size)))
        for start in range(0, first.size, rows_per_slice):
            rows = first[start : start + rows_per_slice]
            a = np.repeat(rows, second.size)
            b = np.tile(second, rows.size)
            yield a * total_nodes + b
            yield b * total_nodes + a
    else:
        members = np.asarray(block.entities_first, dtype=np.int64)
        if members.size < 2:
            return
        rows_per_slice = max(1, chunk_keys // max(1, int(members.size)))
        for start in range(0, members.size, rows_per_slice):
            rows = members[start : start + rows_per_slice]
            a = np.repeat(rows, members.size)
            b = np.tile(members, rows.size)
            off_diagonal = a != b
            yield a[off_diagonal] * total_nodes + b[off_diagonal]


def sparse_local_candidate_counts(
    blocks: BlockCollection, chunk_keys: int = DEFAULT_LCP_CHUNK_KEYS
) -> np.ndarray:
    """Vectorized LCP: distinct co-occurring entities per node.

    Expands blocks into directed ``(node, neighbour)`` keys with NumPy
    broadcasting, deduplicates, and counts neighbours per node.  Matches the
    loop formulation in :meth:`BlockStatistics.local_candidate_counts`
    exactly.  Expansion is flushed through :func:`np.unique` every
    ``chunk_keys`` buffered entries and folded into a running sorted union,
    so peak memory is bounded by the chunk size plus the *distinct* directed
    pair set — not by the raw (duplicate-bearing) comparison count.
    """
    total_nodes = blocks.index_space.total
    seen: np.ndarray = np.empty(0, dtype=np.int64)
    buffered = []
    buffered_size = 0

    def flush():
        nonlocal seen, buffered, buffered_size
        if not buffered:
            return
        fresh = np.unique(np.concatenate(buffered))
        seen = fresh if seen.size == 0 else np.union1d(seen, fresh)
        buffered = []
        buffered_size = 0

    for block in blocks:
        for keys in _expanded_block_keys(block, total_nodes, chunk_keys):
            buffered.append(keys)
            buffered_size += keys.size
            if buffered_size >= chunk_keys:
                flush()
    flush()

    counts = np.zeros(total_nodes, dtype=np.float64)
    if seen.size:
        counts += np.bincount(seen // total_nodes, minlength=total_nodes)
    return counts


def safe_log_ratio_array(total: float, values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.weights.schemes._safe_log_ratio`.

    ``log(total / values)`` element-wise, 0 where the denominator is
    non-positive, the total is non-positive, or the ratio does not exceed 1.
    """
    values = np.asarray(values, dtype=np.float64)
    out = np.zeros(values.shape, dtype=np.float64)
    if total <= 0.0:
        return out
    positive = values > 0.0
    ratio = np.divide(total, values, out=np.ones_like(out), where=positive)
    take = positive & (ratio > 1.0)
    out[take] = np.log(ratio[take])
    return out
