"""Weighting schemes (paper Section 4).

Every scheme maps a candidate pair to a score proportional to its matching
likelihood, using only block co-occurrence statistics.  The original
Supervised Meta-blocking feature set [21] comprises CF-IBF, RACCB, JS and LCP
(the latter contributing two features, one per constituent entity); the paper
adds EJS, WJS, RS and NRS as new features.

All schemes implement :class:`WeightingScheme`; pair-level schemes produce a
single feature column, entity-level schemes (LCP) produce two.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..datamodel import CandidateSet
from .statistics import BlockStatistics


class WeightingScheme(ABC):
    """A schema-agnostic weighting scheme over candidate pairs."""

    #: short identifier used in feature-set descriptions (e.g. "CF-IBF")
    name: str = "scheme"
    #: number of feature columns the scheme contributes (LCP contributes 2)
    width: int = 1

    @abstractmethod
    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        """Return an ``(n_pairs, width)`` array of feature values."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


def _safe_log_ratio(total: float, value: float) -> float:
    """``log(total / value)`` guarded against zero/degenerate denominators."""
    if value <= 0.0 or total <= 0.0:
        return 0.0
    ratio = total / value
    if ratio <= 1.0:
        return 0.0
    return math.log(ratio)


class CommonBlocksScheme(WeightingScheme):
    """CBS — the raw number of blocks shared by the pair, ``|B_i ∩ B_j|``.

    Not part of the paper's candidate feature sets but the simplest
    co-occurrence weight and the classic unsupervised baseline, so it is
    exposed for the unsupervised meta-blocking module and ablations.
    """

    name = "CBS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            values[position, 0] = stats.common_block_count(int(i), int(j))
        return values


class CFIBFScheme(WeightingScheme):
    """CF-IBF — Co-occurrence Frequency–Inverse Block Frequency.

    ``|B_i ∩ B_j| · log(|B|/|B_i|) · log(|B|/|B_j|)``: high when the entities
    co-occur often yet each participates in few blocks (TF-IDF analogy).
    """

    name = "CF-IBF"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        total_blocks = float(stats.num_blocks)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            i, j = int(i), int(j)
            common = stats.common_block_count(i, j)
            if common == 0:
                continue
            ibf_i = _safe_log_ratio(total_blocks, stats.blocks_per_entity[i])
            ibf_j = _safe_log_ratio(total_blocks, stats.blocks_per_entity[j])
            values[position, 0] = common * ibf_i * ibf_j
        return values


class RACCBScheme(WeightingScheme):
    """RACCB — Reciprocal Aggregate Cardinality of Common Blocks.

    ``Σ_{b ∈ B_i ∩ B_j} 1/||b||``: small shared blocks carry distinctive
    information, so each contributes the inverse of its comparison count.
    Also known as ARCS in the meta-blocking literature.
    """

    name = "RACCB"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            common = stats.common_blocks(int(i), int(j))
            values[position, 0] = stats.sum_inverse_cardinality(common)
        return values


class JaccardScheme(WeightingScheme):
    """JS — the Jaccard coefficient of the two entities' block sets.

    ``|B_i ∩ B_j| / (|B_i| + |B_j| - |B_i ∩ B_j|)``.
    """

    name = "JS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            i, j = int(i), int(j)
            common = stats.common_block_count(i, j)
            if common == 0:
                continue
            union = stats.blocks_per_entity[i] + stats.blocks_per_entity[j] - common
            if union > 0:
                values[position, 0] = common / union
        return values


class EnhancedJaccardScheme(WeightingScheme):
    """EJS — Jaccard enhanced with the inverse frequency of each entity's candidates.

    ``JS(c_ij) · log(||B||/||e_i||) · log(||B||/||e_j||)`` where ``||e_i||``
    is the summed cardinality of the blocks of ``e_i``.
    """

    name = "EJS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        jaccard = JaccardScheme().compute(candidates, stats)[:, 0]
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        total = stats.total_cardinality
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            if jaccard[position] == 0.0:
                continue
            i, j = int(i), int(j)
            factor_i = _safe_log_ratio(total, stats.entity_cardinality[i])
            factor_j = _safe_log_ratio(total, stats.entity_cardinality[j])
            values[position, 0] = jaccard[position] * factor_i * factor_j
        return values


class WeightedJaccardScheme(WeightingScheme):
    """WJS — Jaccard over blocks weighted by their inverse comparison count.

    ``Σ_{b∈B_i∩B_j} 1/||b|| / (Σ_{b∈B_i} 1/||b|| + Σ_{b∈B_j} 1/||b|| - Σ_{b∈B_i∩B_j} 1/||b||)``
    — a normalised form of RACCB.
    """

    name = "WJS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            i, j = int(i), int(j)
            common = stats.common_blocks(i, j)
            if not common:
                continue
            shared = stats.sum_inverse_cardinality(common)
            denominator = (
                stats.entity_inv_cardinality[i]
                + stats.entity_inv_cardinality[j]
                - shared
            )
            if denominator > 0:
                values[position, 0] = shared / denominator
        return values


class ReciprocalSizesScheme(WeightingScheme):
    """RS — like RACCB but over entity counts instead of comparison counts.

    ``Σ_{b ∈ B_i ∩ B_j} 1/|b|``.
    """

    name = "RS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            common = stats.common_blocks(int(i), int(j))
            values[position, 0] = stats.sum_inverse_size(common)
        return values


class NormalizedReciprocalSizesScheme(WeightingScheme):
    """NRS — RS normalised by the union of inverse block sizes.

    ``Σ_{b∈B_i∩B_j} 1/|b| / (Σ_{b∈B_i} 1/|b| + Σ_{b∈B_j} 1/|b| - Σ_{b∈B_i∩B_j} 1/|b|)``.
    """

    name = "NRS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            i, j = int(i), int(j)
            common = stats.common_blocks(i, j)
            if not common:
                continue
            shared = stats.sum_inverse_size(common)
            denominator = (
                stats.entity_inv_size[i] + stats.entity_inv_size[j] - shared
            )
            if denominator > 0:
                values[position, 0] = shared / denominator
        return values


class LocalCandidatesScheme(WeightingScheme):
    """LCP — the number of distinct candidates of each constituent entity.

    Entity-level feature: contributes two columns, ``LCP(e_i)`` and
    ``LCP(e_j)``.  The fewer candidates an entity has, the more likely it is
    to match one of them.  Its computation iterates over every block of every
    entity, which is why feature sets avoiding it (BLAST's Formula 1) are
    substantially faster.
    """

    name = "LCP"
    width = 2

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        counts = stats.local_candidate_counts()
        values = np.zeros((len(candidates), 2), dtype=np.float64)
        values[:, 0] = counts[candidates.left]
        values[:, 1] = counts[candidates.right]
        return values
