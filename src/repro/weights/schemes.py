"""Weighting schemes (paper Section 4).

Every scheme maps a candidate pair to a score proportional to its matching
likelihood, using only block co-occurrence statistics.  The original
Supervised Meta-blocking feature set [21] comprises CF-IBF, RACCB, JS and LCP
(the latter contributing two features, one per constituent entity); the paper
adds EJS, WJS, RS and NRS as new features.

All schemes implement :class:`WeightingScheme`; pair-level schemes produce a
single feature column, entity-level schemes (LCP) produce two.

Every scheme carries two implementations of the same formula:

* :meth:`WeightingScheme.compute` — the readable per-pair reference loop;
* :meth:`WeightingScheme.compute_sparse` — the vectorized backend, combining
  the batched co-occurrence aggregates of
  :meth:`repro.weights.statistics.BlockStatistics.pair_cooccurrence` with
  per-entity arrays in plain NumPy arithmetic.

:meth:`WeightingScheme.compute_with_backend` dispatches between them; the
equivalence tests assert both produce ``np.allclose``-identical matrices.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..datamodel import CandidateSet
from .sparse import resolve_backend, safe_log_ratio_array
from .statistics import BlockStatistics


class WeightingScheme(ABC):
    """A schema-agnostic weighting scheme over candidate pairs."""

    #: short identifier used in feature-set descriptions (e.g. "CF-IBF")
    name: str = "scheme"
    #: number of feature columns the scheme contributes (LCP contributes 2)
    width: int = 1

    @abstractmethod
    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        """Return an ``(n_pairs, width)`` array of feature values."""

    @abstractmethod
    def compute_sparse(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        """Vectorized counterpart of :meth:`compute` (same shape and values)."""

    def compute_with_backend(
        self,
        candidates: CandidateSet,
        stats: BlockStatistics,
        backend: str = "loop",
    ) -> np.ndarray:
        """Dispatch to the requested backend (``"loop"`` or ``"sparse"``)."""
        if resolve_backend(backend) == "sparse":
            return self.compute_sparse(candidates, stats)
        return self.compute(candidates, stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


def _safe_log_ratio(total: float, value: float) -> float:
    """``log(total / value)`` guarded against zero/degenerate denominators."""
    if value <= 0.0 or total <= 0.0:
        return 0.0
    ratio = total / value
    if ratio <= 1.0:
        return 0.0
    return math.log(ratio)


class CommonBlocksScheme(WeightingScheme):
    """CBS — the raw number of blocks shared by the pair, ``|B_i ∩ B_j|``.

    Not part of the paper's candidate feature sets but the simplest
    co-occurrence weight and the classic unsupervised baseline, so it is
    exposed for the unsupervised meta-blocking module and ablations.
    """

    name = "CBS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            values[position, 0] = stats.common_block_count(int(i), int(j))
        return values

    def compute_sparse(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        return stats.pair_cooccurrence(candidates).common.reshape(-1, 1).copy()


class CFIBFScheme(WeightingScheme):
    """CF-IBF — Co-occurrence Frequency–Inverse Block Frequency.

    ``|B_i ∩ B_j| · log(|B|/|B_i|) · log(|B|/|B_j|)``: high when the entities
    co-occur often yet each participates in few blocks (TF-IDF analogy).
    """

    name = "CF-IBF"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        total_blocks = float(stats.num_blocks)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            i, j = int(i), int(j)
            common = stats.common_block_count(i, j)
            if common == 0:
                continue
            ibf_i = _safe_log_ratio(total_blocks, stats.blocks_per_entity[i])
            ibf_j = _safe_log_ratio(total_blocks, stats.blocks_per_entity[j])
            values[position, 0] = common * ibf_i * ibf_j
        return values

    def compute_sparse(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        common = stats.pair_cooccurrence(candidates).common
        total_blocks = float(stats.num_blocks)
        ibf_left = safe_log_ratio_array(total_blocks, stats.blocks_per_entity[candidates.left])
        ibf_right = safe_log_ratio_array(total_blocks, stats.blocks_per_entity[candidates.right])
        return (common * ibf_left * ibf_right).reshape(-1, 1)


class RACCBScheme(WeightingScheme):
    """RACCB — Reciprocal Aggregate Cardinality of Common Blocks.

    ``Σ_{b ∈ B_i ∩ B_j} 1/||b||``: small shared blocks carry distinctive
    information, so each contributes the inverse of its comparison count.
    Also known as ARCS in the meta-blocking literature.
    """

    name = "RACCB"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            common = stats.common_blocks(int(i), int(j))
            values[position, 0] = stats.sum_inverse_cardinality(common)
        return values

    def compute_sparse(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        aggregates = stats.pair_cooccurrence(candidates)
        return aggregates.sum_inverse_cardinality.reshape(-1, 1).copy()


class JaccardScheme(WeightingScheme):
    """JS — the Jaccard coefficient of the two entities' block sets.

    ``|B_i ∩ B_j| / (|B_i| + |B_j| - |B_i ∩ B_j|)``.
    """

    name = "JS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            i, j = int(i), int(j)
            common = stats.common_block_count(i, j)
            if common == 0:
                continue
            union = stats.blocks_per_entity[i] + stats.blocks_per_entity[j] - common
            if union > 0:
                values[position, 0] = common / union
        return values

    def compute_sparse(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        common = stats.pair_cooccurrence(candidates).common
        union = (
            stats.blocks_per_entity[candidates.left]
            + stats.blocks_per_entity[candidates.right]
            - common
        )
        values = np.zeros(common.shape, dtype=np.float64)
        defined = (common > 0) & (union > 0)
        values[defined] = common[defined] / union[defined]
        return values.reshape(-1, 1)


class EnhancedJaccardScheme(WeightingScheme):
    """EJS — Jaccard enhanced with the inverse frequency of each entity's candidates.

    ``JS(c_ij) · log(||B||/||e_i||) · log(||B||/||e_j||)`` where ``||e_i||``
    is the summed cardinality of the blocks of ``e_i``.
    """

    name = "EJS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        jaccard = JaccardScheme().compute(candidates, stats)[:, 0]
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        total = stats.total_cardinality
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            if jaccard[position] == 0.0:
                continue
            i, j = int(i), int(j)
            factor_i = _safe_log_ratio(total, stats.entity_cardinality[i])
            factor_j = _safe_log_ratio(total, stats.entity_cardinality[j])
            values[position, 0] = jaccard[position] * factor_i * factor_j
        return values

    def compute_sparse(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        jaccard = JaccardScheme().compute_sparse(candidates, stats)[:, 0]
        total = stats.total_cardinality
        factor_left = safe_log_ratio_array(total, stats.entity_cardinality[candidates.left])
        factor_right = safe_log_ratio_array(total, stats.entity_cardinality[candidates.right])
        return (jaccard * factor_left * factor_right).reshape(-1, 1)


class WeightedJaccardScheme(WeightingScheme):
    """WJS — Jaccard over blocks weighted by their inverse comparison count.

    ``Σ_{b∈B_i∩B_j} 1/||b|| / (Σ_{b∈B_i} 1/||b|| + Σ_{b∈B_j} 1/||b|| - Σ_{b∈B_i∩B_j} 1/||b||)``
    — a normalised form of RACCB.
    """

    name = "WJS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            i, j = int(i), int(j)
            common = stats.common_blocks(i, j)
            if not common:
                continue
            shared = stats.sum_inverse_cardinality(common)
            denominator = (
                stats.entity_inv_cardinality[i]
                + stats.entity_inv_cardinality[j]
                - shared
            )
            if denominator > 0:
                values[position, 0] = shared / denominator
        return values

    def compute_sparse(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        aggregates = stats.pair_cooccurrence(candidates)
        shared = aggregates.sum_inverse_cardinality
        denominator = (
            stats.entity_inv_cardinality[candidates.left]
            + stats.entity_inv_cardinality[candidates.right]
            - shared
        )
        values = np.zeros(shared.shape, dtype=np.float64)
        defined = (aggregates.common > 0) & (denominator > 0)
        values[defined] = shared[defined] / denominator[defined]
        return values.reshape(-1, 1)


class ReciprocalSizesScheme(WeightingScheme):
    """RS — like RACCB but over entity counts instead of comparison counts.

    ``Σ_{b ∈ B_i ∩ B_j} 1/|b|``.
    """

    name = "RS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            common = stats.common_blocks(int(i), int(j))
            values[position, 0] = stats.sum_inverse_size(common)
        return values

    def compute_sparse(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        return stats.pair_cooccurrence(candidates).sum_inverse_size.reshape(-1, 1).copy()


class NormalizedReciprocalSizesScheme(WeightingScheme):
    """NRS — RS normalised by the union of inverse block sizes.

    ``Σ_{b∈B_i∩B_j} 1/|b| / (Σ_{b∈B_i} 1/|b| + Σ_{b∈B_j} 1/|b| - Σ_{b∈B_i∩B_j} 1/|b|)``.
    """

    name = "NRS"

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        values = np.zeros((len(candidates), 1), dtype=np.float64)
        for position, (i, j) in enumerate(zip(candidates.left, candidates.right)):
            i, j = int(i), int(j)
            common = stats.common_blocks(i, j)
            if not common:
                continue
            shared = stats.sum_inverse_size(common)
            denominator = (
                stats.entity_inv_size[i] + stats.entity_inv_size[j] - shared
            )
            if denominator > 0:
                values[position, 0] = shared / denominator
        return values

    def compute_sparse(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        aggregates = stats.pair_cooccurrence(candidates)
        shared = aggregates.sum_inverse_size
        denominator = (
            stats.entity_inv_size[candidates.left]
            + stats.entity_inv_size[candidates.right]
            - shared
        )
        values = np.zeros(shared.shape, dtype=np.float64)
        defined = (aggregates.common > 0) & (denominator > 0)
        values[defined] = shared[defined] / denominator[defined]
        return values.reshape(-1, 1)


class LocalCandidatesScheme(WeightingScheme):
    """LCP — the number of distinct candidates of each constituent entity.

    Entity-level feature: contributes two columns, ``LCP(e_i)`` and
    ``LCP(e_j)``.  The fewer candidates an entity has, the more likely it is
    to match one of them.  Its computation iterates over every block of every
    entity, which is why feature sets avoiding it (BLAST's Formula 1) are
    substantially faster.
    """

    name = "LCP"
    width = 2

    def compute(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        counts = stats.local_candidate_counts()
        values = np.zeros((len(candidates), 2), dtype=np.float64)
        values[:, 0] = counts[candidates.left]
        values[:, 1] = counts[candidates.right]
        return values

    def compute_sparse(self, candidates: CandidateSet, stats: BlockStatistics) -> np.ndarray:
        counts = stats.local_candidate_counts_sparse()
        values = np.zeros((len(candidates), 2), dtype=np.float64)
        values[:, 0] = counts[candidates.left]
        values[:, 1] = counts[candidates.right]
        return values
