"""Registry of weighting schemes and the paper's named feature sets.

Schemes are referenced by their short names (``"CF-IBF"``, ``"RACCB"``, ...)
throughout the experiment configuration, mirroring the paper's notation.  The
registry also exposes the three feature sets the paper singles out:

* ``ORIGINAL_FEATURE_SET`` — the optimal set of Supervised Meta-blocking [21]:
  {CF-IBF, RACCB, JS, LCP};
* ``BLAST_FEATURE_SET`` — Formula 1: {CF-IBF, RACCB, RS, NRS} (feature set 78);
* ``RCNP_FEATURE_SET`` — Formula 2: {CF-IBF, RACCB, JS, LCP, WJS} (set 187).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Sequence, Tuple, Type

from .schemes import (
    CFIBFScheme,
    CommonBlocksScheme,
    EnhancedJaccardScheme,
    JaccardScheme,
    LocalCandidatesScheme,
    NormalizedReciprocalSizesScheme,
    RACCBScheme,
    ReciprocalSizesScheme,
    WeightedJaccardScheme,
    WeightingScheme,
)

#: All schemes known to the library, keyed by their short name.
SCHEME_CLASSES: Dict[str, Type[WeightingScheme]] = {
    "CBS": CommonBlocksScheme,
    "CF-IBF": CFIBFScheme,
    "RACCB": RACCBScheme,
    "JS": JaccardScheme,
    "EJS": EnhancedJaccardScheme,
    "WJS": WeightedJaccardScheme,
    "RS": ReciprocalSizesScheme,
    "NRS": NormalizedReciprocalSizesScheme,
    "LCP": LocalCandidatesScheme,
}

#: The eight features considered in the paper's exhaustive selection
#: (Section 5.3): the four of [21] plus the four new schemes.
PAPER_FEATURES: Tuple[str, ...] = (
    "CF-IBF",
    "RACCB",
    "JS",
    "LCP",
    "EJS",
    "WJS",
    "RS",
    "NRS",
)

#: Optimal feature set of Supervised Meta-blocking [21].
ORIGINAL_FEATURE_SET: Tuple[str, ...] = ("CF-IBF", "RACCB", "JS", "LCP")

#: Formula 1 — the feature set selected for BLAST (set id 78 in Table 3).
BLAST_FEATURE_SET: Tuple[str, ...] = ("CF-IBF", "RACCB", "RS", "NRS")

#: Formula 2 — the feature set selected for RCNP (set id 187 in Table 4).
RCNP_FEATURE_SET: Tuple[str, ...] = ("CF-IBF", "RACCB", "JS", "LCP", "WJS")


def get_scheme(name: str) -> WeightingScheme:
    """Instantiate the scheme registered under ``name``.

    Raises
    ------
    KeyError
        With the list of known schemes when the name is unknown.
    """
    try:
        return SCHEME_CLASSES[name]()
    except KeyError:
        known = ", ".join(sorted(SCHEME_CLASSES))
        raise KeyError(f"unknown weighting scheme {name!r}; known schemes: {known}") from None


def get_schemes(names: Sequence[str]) -> List[WeightingScheme]:
    """Instantiate several schemes, preserving order and rejecting duplicates."""
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scheme names in {names!r}")
    return [get_scheme(name) for name in names]


def feature_width(names: Sequence[str]) -> int:
    """Number of feature columns produced by the named schemes."""
    return sum(SCHEME_CLASSES[name].width for name in names)


def all_feature_subsets(
    features: Sequence[str] = PAPER_FEATURES, min_size: int = 1
) -> List[Tuple[str, ...]]:
    """Enumerate every non-empty subset of ``features`` (255 for 8 features).

    Subsets are ordered by size and lexicographically within a size, matching
    the exhaustive search of Section 5.3.
    """
    if min_size < 1:
        raise ValueError("min_size must be at least 1")
    subsets: List[Tuple[str, ...]] = []
    for size in range(min_size, len(features) + 1):
        subsets.extend(combinations(features, size))
    return subsets
