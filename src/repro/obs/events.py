"""The structured event log: one JSON line per typed event, per process.

The sink is a *directory* (daemon flag ``--event-log DIR``, env
``REPRO_EVENT_LOG``); every participating process appends to its own
``events-<role>-<pid>.jsonl`` file inside it, so the daemon, its shard
workers (fork or spawn — the directory travels in the environment) and
any executor pool worker write concurrently without coordination.  Each
line is one canonical-JSON object::

    {"ts": <epoch seconds>, "seq": <per-process ordinal>, "pid": ...,
     "role": "daemon"|"shard0"|..., "type": <event type>, ...fields}

``read_events`` merges the directory back into one stream ordered by
``(ts, pid, seq)`` — the per-process ``seq`` makes each process's own
ordering exact even when timestamps collide.

Emission is designed for the hot path: when no sink is configured,
:func:`emit` is one module-attribute check; when one is, it is a dict
build, a ``json.dumps`` and one locked buffered write + flush (flushed
per event so a SIGKILLed worker loses at most the event being written).

The module also backs the project's ``logging`` pipeline:
:func:`get_logger` returns a stdlib logger whose records are mirrored
into the event log as ``type: "log"`` events (with the trace id when the
call site passes ``extra={"trace_id": ...}``) and to stderr from WARNING
up — the replacement for ``traceback.print_exc()`` and bare prints.
"""

from __future__ import annotations

import io
import json
import logging
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "EVENT_LOG_ENV",
    "configure",
    "configured_dir",
    "emit",
    "get_logger",
    "read_events",
    "set_role",
    "summarize_events",
]

#: environment variable naming the event-log directory; exported by
#: :func:`configure` so worker processes (fork or spawn) inherit the sink
EVENT_LOG_ENV = "REPRO_EVENT_LOG"

_lock = threading.Lock()
#: the configured directory (None = disabled); resolved from the
#: environment on first use when never configured explicitly
_dir: Optional[Path] = None
_resolved = False
_role = "main"
_seq = 0
_file: Optional[io.TextIOWrapper] = None
#: pid the open file belongs to — a fork must not write the parent's file
_file_pid: Optional[int] = None


def configure(
    directory: Optional[os.PathLike], role: Optional[str] = None, export_env: bool = True
) -> None:
    """Set (or with ``None`` clear) this process's event sink.

    ``export_env`` mirrors the setting into ``REPRO_EVENT_LOG`` so child
    processes started afterwards — shard workers under either start
    method — log into the same directory.  Clearing also clears the
    environment, so one daemon's sink never leaks into the next daemon
    constructed in the same process (the test suite runs many).
    """
    global _dir, _resolved, _role, _file, _file_pid, _seq
    with _lock:
        _close_locked()
        _dir = Path(directory) if directory is not None else None
        _resolved = True
        _seq = 0  # a rebound sink starts a fresh per-process stream
        if role is not None:
            _role = role
        if export_env:
            if _dir is not None:
                os.environ[EVENT_LOG_ENV] = str(_dir)
            else:
                os.environ.pop(EVENT_LOG_ENV, None)
        if _dir is not None:
            _dir.mkdir(parents=True, exist_ok=True)


def set_role(role: str) -> None:
    """Name this process in its event records (``daemon``, ``shard0``, ...)."""
    global _role, _file, _file_pid
    with _lock:
        if role != _role:
            _role = role
            _close_locked()


def configured_dir() -> Optional[Path]:
    """The active sink directory, resolving ``REPRO_EVENT_LOG`` lazily."""
    global _dir, _resolved
    if not _resolved:
        with _lock:
            if not _resolved:
                env = os.environ.get(EVENT_LOG_ENV)
                _dir = Path(env) if env else None
                _resolved = True
    return _dir


def _close_locked() -> None:
    global _file, _file_pid
    if _file is not None:
        try:
            _file.close()
        except OSError:
            pass
    _file = None
    _file_pid = None


def _open_locked(directory: Path) -> Optional[io.TextIOWrapper]:
    """The per-process sink file, (re)opened after a fork or role change."""
    global _file, _file_pid
    pid = os.getpid()
    if _file is None or _file_pid != pid:
        _close_locked()
        try:
            directory.mkdir(parents=True, exist_ok=True)
            _file = open(
                directory / f"events-{_role}-{pid}.jsonl", "a", encoding="utf-8"
            )
            _file_pid = pid
        except OSError:
            _file = None
            _file_pid = None
    return _file


def emit(event_type: str, **fields: Any) -> None:
    """Append one typed event; a no-op when no sink is configured.

    The event is flushed before returning, so a process killed right
    after emitting (the fault injector's SIGKILL) leaves the event on
    disk.  Emission never raises: a failing sink drops the event rather
    than failing the operation being observed.
    """
    directory = configured_dir()
    if directory is None:
        return
    global _seq
    with _lock:
        handle = _open_locked(directory)
        if handle is None:
            return
        _seq += 1
        record = {
            "ts": round(time.time(), 6),
            "seq": _seq,
            "pid": os.getpid(),
            "role": _role,
            "type": event_type,
        }
        record.update(fields)
        try:
            handle.write(
                json.dumps(record, separators=(",", ":"), sort_keys=True, default=str)
                + "\n"
            )
            handle.flush()
        except (OSError, ValueError):
            _close_locked()


# -- reading an event-log directory back ------------------------------------------

def read_events(directory: os.PathLike) -> List[Dict[str, Any]]:
    """Every event in ``directory``, merged and ordered by ``(ts, pid, seq)``.

    Torn final lines (a process killed mid-write) are dropped, mirroring
    the WAL's replay-to-last-complete-record discipline.
    """
    events: List[Dict[str, Any]] = []
    for path in sorted(Path(directory).glob("events-*.jsonl")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn tail of a killed process
            if isinstance(event, dict):
                events.append(event)
    events.sort(
        key=lambda e: (e.get("ts", 0.0), e.get("pid", 0), e.get("seq", 0))
    )
    return events


def summarize_events(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Counts by type/role plus request outcome totals, for ``repro trace``."""
    by_type: Dict[str, int] = {}
    by_role: Dict[str, int] = {}
    requests = ok = failed = 0
    slowest: List[Dict[str, Any]] = []
    for event in events:
        by_type[event.get("type", "?")] = by_type.get(event.get("type", "?"), 0) + 1
        by_role[event.get("role", "?")] = by_role.get(event.get("role", "?"), 0) + 1
        if event.get("type") == "request":
            requests += 1
            if event.get("ok"):
                ok += 1
            else:
                failed += 1
            slowest.append(event)
    slowest.sort(key=lambda e: -float(e.get("duration_ms", 0.0)))
    return {
        "events": len(events),
        "by_type": dict(sorted(by_type.items())),
        "by_role": dict(sorted(by_role.items())),
        "requests": {"total": requests, "ok": ok, "failed": failed},
        "slowest": slowest[:10],
    }


# -- the logging pipeline ----------------------------------------------------------

class EventLogHandler(logging.Handler):
    """Mirror every log record into the event log as a ``log`` event."""

    def emit(self, record: logging.LogRecord) -> None:  # noqa: A003
        try:
            fields: Dict[str, Any] = {
                "level": record.levelname,
                "logger": record.name,
                "message": record.getMessage(),
            }
            trace_id = getattr(record, "trace_id", None)
            if trace_id is not None:
                fields["trace"] = trace_id
            if record.exc_info and record.exc_info[0] is not None:
                fields["exception"] = logging.Formatter().formatException(
                    record.exc_info
                )
            emit("log", **fields)
        except Exception:  # noqa: BLE001 - logging must never raise
            pass


_logging_configured = False


def _configure_logging() -> None:
    """Attach the event-log + stderr handlers to the ``repro`` root logger.

    Idempotent, and process-local state only — safe under fork and spawn
    (each worker configures its own handlers on first use).  Nothing is
    attached to the *global* root logger, so embedding applications keep
    full control of their own logging tree.
    """
    global _logging_configured
    if _logging_configured:
        return
    with _lock:
        if _logging_configured:
            return
        root = logging.getLogger("repro")
        root.setLevel(logging.INFO)
        root.propagate = False
        if not any(isinstance(h, EventLogHandler) for h in root.handlers):
            root.addHandler(EventLogHandler())
            stderr = logging.StreamHandler(sys.stderr)
            stderr.setLevel(logging.WARNING)
            stderr.setFormatter(
                logging.Formatter(
                    "%(asctime)s %(levelname)s %(name)s: %(message)s"
                )
            )
            root.addHandler(stderr)
        _logging_configured = True


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy wired to the event pipeline.

    Diagnostics logged here reach (1) the structured event log, when one
    is configured, and (2) stderr from WARNING upward — the project-wide
    replacement for ``print`` / ``traceback.print_exc`` diagnostics.
    Pass ``extra={"trace_id": ...}`` to stamp a record with its request.
    """
    _configure_logging()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
