"""The unified metrics registry and its Prometheus text exposition.

:class:`MetricsRegistry` folds the serving stack's previously scattered
telemetry into one thread-safe object: the per-operation latency
histograms and error counts formerly in ``serve.metrics.ServerMetrics``,
the queue-depth gauges, the delta-shipping / supervision / fault
counters, accumulated :class:`~repro.utils.timing.StageTimer` stages,
and **sampled process gauges** (RSS, resident shared-memory bytes, WAL
size, snapshot age, per-shard replica lag) registered as callbacks and
read at snapshot/exposition time rather than pushed on the hot path.

Two serialisations: :meth:`MetricsRegistry.snapshot` keeps the JSON
shape the ``stats`` op has always returned (``operations`` / ``queues``
/ ``counters`` / ``connections``, now plus ``gauges`` and ``stages``),
and :func:`render_prometheus` emits the Prometheus text exposition
format served by the new ``metrics`` protocol op.

Histogram bucket lookup is ``bisect``-based: ``add`` runs under the
registry lock on every request, so the old linear scan over the 29
geometric bounds was pure overhead.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "BUCKET_BOUNDS",
    "LatencyHistogram",
    "MetricsRegistry",
    "process_rss_bytes",
    "render_prometheus",
]

#: histogram bucket upper bounds in seconds: 10^(-5) .. 10^2, four buckets
#: per decade (geometric, factor 10^(1/4) ≈ 1.78)
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 4.0) for exponent in range(-20, 9)
)


class LatencyHistogram:
    """Latency distribution over fixed geometric buckets.

    Percentiles are read from the bucket boundaries (the reported value is
    the upper bound of the bucket the rank falls in — an overestimate by at
    most one bucket width), while count, mean and max are exact.
    """

    def __init__(self) -> None:
        self._counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def add(self, seconds: float) -> None:
        """Record one observation.

        The bucket is the first bound ``>= seconds`` (one binary search —
        this runs under the registry lock for every served request).
        """
        self._counts[bisect_left(BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def percentile(self, fraction: float) -> float:
        """The bucket upper bound covering the ``fraction`` rank (0..1)."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(fraction * self.count + 0.5))
        seen = 0
        for position, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                if position < len(BUCKET_BOUNDS):
                    return BUCKET_BOUNDS[position]
                return self.max_seconds
        return self.max_seconds

    def summary(self) -> Dict[str, float]:
        """Count, mean and estimated p50/p99 in milliseconds."""
        mean = self.total_seconds / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": mean * 1e3,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p99_ms": self.percentile(0.99) * 1e3,
            "max_ms": self.max_seconds * 1e3,
        }

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for exposition."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(BUCKET_BOUNDS, self._counts):
            running += count
            out.append((bound, running))
        return out


def process_rss_bytes() -> Optional[int]:
    """This process's current resident set size, or ``None`` if unreadable."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        try:
            import resource

            # ru_maxrss is the peak, in KiB on Linux — a fallback, not a
            # substitute for current RSS
            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        except Exception:  # pragma: no cover - platform without getrusage
            return None


class MetricsRegistry:
    """The serving stack's single thread-safe metrics registry.

    Recordings come from the asyncio loop, the mutation thread and the
    read thread concurrently; everything is guarded by one lock.  Sampled
    gauges (:meth:`register_gauge`) are callables invoked *outside* the
    lock at snapshot time — they read cheap process state (``/proc``,
    file sizes, shm accounting) and must never block on the lock holder.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._errors: Dict[str, int] = {}
        self._gauges: Dict[str, int] = {
            "mutation_queue_depth": 0,
            "read_queue_depth": 0,
        }
        #: fault-tolerance event counters (worker_restarts, degraded_reads,
        #: shed_mutations, shed_reads, deadline_exceeded, wal_failures, ...)
        self._counters: Dict[str, int] = {}
        #: accumulated StageTimer seconds by stage name
        self._stages: Dict[str, float] = {}
        #: directly-set process gauges (name -> last value)
        self._named_gauges: Dict[str, float] = {}
        #: sampled gauges: name -> zero-arg callable returning a number
        self._gauge_callbacks: Dict[str, Callable[[], Optional[float]]] = {}
        self.connections_total = 0
        self.connections_open = 0

    # -- recording -----------------------------------------------------------------

    def increment(self, name: str, delta: int = 1) -> None:
        """Bump a named event counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def record(self, op: str, seconds: float, ok: bool) -> None:
        """Record one served request."""
        with self._lock:
            histogram = self._histograms.get(op)
            if histogram is None:
                histogram = self._histograms[op] = LatencyHistogram()
            histogram.add(seconds)
            if not ok:
                self._errors[op] = self._errors.get(op, 0) + 1

    def adjust_gauge(self, name: str, delta: int) -> None:
        """Move a queue-depth gauge up or down."""
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0) + delta

    def set_gauge(self, name: str, value: float) -> None:
        """Set a named process gauge to its latest value."""
        with self._lock:
            self._named_gauges[name] = float(value)

    def register_gauge(
        self, name: str, sample: Callable[[], Optional[float]]
    ) -> None:
        """Register a gauge sampled lazily at snapshot/exposition time.

        ``sample`` returning ``None`` (or raising) omits the gauge from
        that snapshot rather than reporting a stale or bogus value.
        """
        with self._lock:
            self._gauge_callbacks[name] = sample

    def observe_stage(self, name: str, seconds: float) -> None:
        """Accumulate externally-timed stage seconds (StageTimer unification)."""
        with self._lock:
            self._stages[name] = self._stages.get(name, 0.0) + float(seconds)

    def absorb_stage_timer(self, timer: Any, prefix: str = "") -> None:
        """Fold a :class:`~repro.utils.timing.StageTimer` into the registry."""
        stages = timer.as_dict() if hasattr(timer, "as_dict") else dict(timer)
        with self._lock:
            for name, seconds in stages.items():
                key = f"{prefix}{name}"
                self._stages[key] = self._stages.get(key, 0.0) + float(seconds)

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_total += 1
            self.connections_open += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_open -= 1

    # -- serialisation -------------------------------------------------------------

    def _sample_gauges(self) -> Dict[str, float]:
        """Current values of set + sampled gauges (callbacks run unlocked)."""
        with self._lock:
            gauges = dict(self._named_gauges)
            callbacks = list(self._gauge_callbacks.items())
        for name, sample in callbacks:
            try:
                value = sample()
            except Exception:  # noqa: BLE001 - a broken gauge must not break stats
                continue
            if value is not None:
                gauges[name] = float(value)
        return gauges

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-encodable view of every counter, gauge and histogram."""
        sampled = self._sample_gauges()
        with self._lock:
            return {
                "operations": {
                    op: dict(
                        histogram.summary(), errors=self._errors.get(op, 0)
                    )
                    for op, histogram in sorted(self._histograms.items())
                },
                "queues": dict(self._gauges),
                "counters": dict(sorted(self._counters.items())),
                "connections": {
                    "total": self.connections_total,
                    "open": self.connections_open,
                },
                "gauges": dict(sorted(sampled.items())),
                "stages": {
                    name: round(seconds, 6)
                    for name, seconds in sorted(self._stages.items())
                },
            }


# -- Prometheus text exposition ----------------------------------------------------

def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_bound(bound: float) -> str:
    return format(bound, ".9g")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Served by the daemon's ``metrics`` protocol op and printed by
    ``repro client metrics`` — one histogram family for request
    latencies, counters for errors/events/stage seconds, gauges for
    queue depths, connections and the sampled process gauges.
    """
    sampled = registry._sample_gauges()
    with registry._lock:
        histograms = {
            op: (histogram.cumulative_buckets(), histogram.count, histogram.total_seconds)
            for op, histogram in sorted(registry._histograms.items())
        }
        errors = dict(sorted(registry._errors.items()))
        queues = dict(sorted(registry._gauges.items()))
        counters = dict(sorted(registry._counters.items()))
        stages = dict(sorted(registry._stages.items()))
        connections_total = registry.connections_total
        connections_open = registry.connections_open

    lines: List[str] = []

    lines.append(
        "# HELP repro_request_duration_seconds Latency of served requests by operation."
    )
    lines.append("# TYPE repro_request_duration_seconds histogram")
    for op, (buckets, count, total_seconds) in histograms.items():
        label = _escape_label(op)
        for bound, cumulative in buckets:
            lines.append(
                f'repro_request_duration_seconds_bucket{{op="{label}",le="{_format_bound(bound)}"}} {cumulative}'
            )
        lines.append(
            f'repro_request_duration_seconds_bucket{{op="{label}",le="+Inf"}} {count}'
        )
        lines.append(
            f'repro_request_duration_seconds_sum{{op="{label}"}} {repr(total_seconds)}'
        )
        lines.append(
            f'repro_request_duration_seconds_count{{op="{label}"}} {count}'
        )

    lines.append("# HELP repro_request_errors_total Failed requests by operation.")
    lines.append("# TYPE repro_request_errors_total counter")
    for op, count in errors.items():
        lines.append(
            f'repro_request_errors_total{{op="{_escape_label(op)}"}} {count}'
        )

    lines.append("# HELP repro_events_total Serving events by kind.")
    lines.append("# TYPE repro_events_total counter")
    for name, count in counters.items():
        lines.append(
            f'repro_events_total{{event="{_escape_label(name)}"}} {count}'
        )

    lines.append("# HELP repro_queue_depth Dispatch queue depths.")
    lines.append("# TYPE repro_queue_depth gauge")
    for name, depth in queues.items():
        lines.append(
            f'repro_queue_depth{{queue="{_escape_label(name)}"}} {depth}'
        )

    lines.append("# HELP repro_stage_seconds_total Accumulated pipeline stage seconds.")
    lines.append("# TYPE repro_stage_seconds_total counter")
    for name, seconds in stages.items():
        lines.append(
            f'repro_stage_seconds_total{{stage="{_escape_label(name)}"}} {repr(float(seconds))}'
        )

    lines.append("# HELP repro_connections_total Client connections accepted.")
    lines.append("# TYPE repro_connections_total counter")
    lines.append(f"repro_connections_total {connections_total}")
    lines.append("# HELP repro_connections_open Client connections currently open.")
    lines.append("# TYPE repro_connections_open gauge")
    lines.append(f"repro_connections_open {connections_open}")

    for name in sorted(sampled):
        metric = f"repro_{name}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(sampled[name])}")

    return "\n".join(lines) + "\n"
