"""Human-readable rendering for ``repro trace``: span trees and event logs."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["render_event", "render_event_summary", "render_span_tree"]


def render_span_tree(tree: Optional[Dict[str, Any]], indent: str = "") -> str:
    """ASCII rendering of a ``finish()``'d span tree.

    ::

        match                                 12.412ms
        ├─ dispatch-wait                       0.101ms
        └─ fan-out                            11.871ms  shards=2
           ├─ shard0                           5.002ms  records_replayed=3
           └─ shard1                           4.998ms
    """
    if not tree:
        return "(no trace recorded)"
    lines: List[str] = []

    def _tags(span: Dict[str, Any]) -> str:
        tags = span.get("tags") or {}
        if not tags:
            return ""
        return "  " + " ".join(
            f"{key}={tags[key]}" for key in sorted(tags)
        )

    def _walk(span: Dict[str, Any], prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        label = f"{prefix}{connector}{span.get('name', '?')}"
        lines.append(
            f"{label:<42} {float(span.get('ms', 0.0)):>10.3f}ms{_tags(span)}"
        )
        children = span.get("children") or []
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for position, child in enumerate(children):
            _walk(child, child_prefix, position == len(children) - 1, False)

    _walk(tree, indent, True, True)
    return "\n".join(lines)


def render_event(event: Dict[str, Any]) -> str:
    """One event as a compact single line (``repro trace --tail``)."""
    ts = event.get("ts", 0.0)
    parts = [
        f"{float(ts):.3f}",
        f"{event.get('role', '?'):<8}",
        f"{event.get('type', '?'):<20}",
    ]
    skip = {"ts", "seq", "pid", "role", "type", "spans"}
    details = " ".join(
        f"{key}={event[key]}"
        for key in sorted(event)
        if key not in skip and not isinstance(event[key], (dict, list))
    )
    if details:
        parts.append(details)
    return " ".join(parts)


def render_event_summary(summary: Dict[str, Any]) -> str:
    """The :func:`repro.obs.events.summarize_events` digest as text."""
    lines: List[str] = [f"{summary.get('events', 0)} events"]
    requests = summary.get("requests", {})
    if requests.get("total"):
        lines.append(
            f"requests: {requests.get('total', 0)} total, "
            f"{requests.get('ok', 0)} ok, {requests.get('failed', 0)} failed"
        )
    by_type = summary.get("by_type", {})
    if by_type:
        lines.append(
            "by type: "
            + ", ".join(f"{name}={count}" for name, count in by_type.items())
        )
    by_role = summary.get("by_role", {})
    if by_role:
        lines.append(
            "by role: "
            + ", ".join(f"{name}={count}" for name, count in by_role.items())
        )
    slowest = summary.get("slowest") or []
    if slowest:
        lines.append("slowest requests:")
        for event in slowest:
            lines.append(
                f"  {float(event.get('duration_ms', 0.0)):>10.3f}ms "
                f"{event.get('op', '?'):<12} trace={event.get('trace', '-')} "
                f"ok={bool(event.get('ok'))}"
            )
    return "\n".join(lines)
