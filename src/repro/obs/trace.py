"""Request tracing: per-request span trees across threads and processes.

Every request entering the serving stack gets a **trace id** — minted by
the daemon's front end, or supplied by the client and carried in the
protocol envelope — and a :class:`RequestTrace` that records **spans** as
the request crosses the asyncio loop, the mutation/read dispatch threads,
the WAL append path and the shard-worker fan-out.  The result is a span
tree: ``finish()`` returns a JSON-encodable nesting of
``{name, ms, tags, children}`` that the daemon attaches to the request's
event-log record, making every request queryable by id after the fact
(``repro trace <id>``).

Three integration styles, by how far the instrumented code is from the
request:

* code that *has* the trace object uses :meth:`RequestTrace.span`
  directly (the daemon's dispatch path);
* deep layers that must not know about serving (the write-ahead log)
  call :func:`hook_span`, which attributes the measurement to whatever
  trace is *active on the current thread* (:func:`activate`) and costs
  one attribute check when none is;
* other *processes* (shard workers) measure locally and ship
  ``[{name, ms, ...}]`` lists back over their pipe; the parent grafts
  them into the live trace with :meth:`RequestTrace.graft`.

A trace is touched by one thread at a time (the daemon awaits its
dispatch executors), so spans need no locking; :func:`activate` is
thread-local, so concurrent requests on different threads never see each
other's traces.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "RequestTrace",
    "Span",
    "activate",
    "current_trace",
    "hook_span",
    "mint_trace_id",
]


def mint_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed step of a request, with optional nested children."""

    __slots__ = ("name", "started_at", "ms", "tags", "children", "_t0")

    def __init__(self, name: str, **tags: Any) -> None:
        self.name = name
        #: wall-clock start (epoch seconds) — correlates with event records
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.ms: float = 0.0
        self.tags: Dict[str, Any] = tags
        self.children: List["Span"] = []

    def close(self) -> None:
        self.ms = (time.perf_counter() - self._t0) * 1e3

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"name": self.name, "ms": round(self.ms, 3)}
        if self.tags:
            entry["tags"] = dict(self.tags)
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry


class RequestTrace:
    """The span tree of one request.

    ``enabled=False`` keeps the trace id (the envelope still echoes it)
    but makes every recording call a no-op — the measured configuration
    for the overhead bench's "tracing off" arm.
    """

    __slots__ = ("trace_id", "op", "enabled", "root", "_stack")

    def __init__(self, trace_id: str, op: str, enabled: bool = True) -> None:
        self.trace_id = trace_id
        self.op = op
        self.enabled = enabled
        self.root = Span(op) if enabled else None
        self._stack: List[Span] = [self.root] if enabled else []

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Optional[Span]]:
        """Record one nested span around the with-block."""
        if not self.enabled:
            yield None
            return
        span = Span(name, **tags)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.close()
            self._stack.pop()

    def add_span(self, name: str, ms: float, **tags: Any) -> None:
        """Attach one externally measured span at the current nesting."""
        if not self.enabled:
            return
        span = Span(name, **tags)
        span.ms = float(ms)
        self._stack[-1].children.append(span)

    def graft(self, name: str, spans: Sequence[Dict[str, Any]], **tags: Any) -> None:
        """Attach a subtree measured in another process.

        ``spans`` is a list of ``{"name": ..., "ms": ..., <tags>}`` objects
        (the shape shard workers ship in their read-state meta); they become
        children of a new ``name`` span whose duration is their sum.
        """
        if not self.enabled:
            return
        parent = Span(name, **tags)
        total = 0.0
        for entry in spans:
            entry = dict(entry)
            child = Span(
                str(entry.pop("name", "span")),
                **{key: value for key, value in entry.items() if key != "ms"},
            )
            child.ms = float(entry.get("ms", 0.0))
            total += child.ms
            parent.children.append(child)
        parent.ms = total
        self._stack[-1].children.append(parent)

    def finish(self) -> Optional[Dict[str, Any]]:
        """Close the root span and return the span tree (``None`` if disabled)."""
        if not self.enabled:
            return None
        self.root.close()
        return self.root.to_dict()


# -- thread-local activation (for hook spans deep below the dispatch layer) --------

_tls = threading.local()


@contextmanager
def activate(trace: Optional[RequestTrace]) -> Iterator[None]:
    """Make ``trace`` the current thread's active trace for the block."""
    previous = getattr(_tls, "trace", None)
    _tls.trace = trace
    try:
        yield
    finally:
        _tls.trace = previous


def current_trace() -> Optional[RequestTrace]:
    """The trace active on this thread, if any."""
    return getattr(_tls, "trace", None)


@contextmanager
def hook_span(name: str, **tags: Any) -> Iterator[None]:
    """A span against the thread's active trace; free when none is active.

    The instrumentation point for layers that must not depend on the
    serving stack (:meth:`WriteAheadLog.append_record` and friends):
    outside a traced request the cost is one thread-local read.
    """
    trace = getattr(_tls, "trace", None)
    if trace is None or not trace.enabled:
        yield
        return
    with trace.span(name, **tags):
        yield
