"""``repro.obs`` — tracing, structured event log, and unified metrics.

The serving stack's observability layer, in three parts that share a
trace id as the join key:

* :mod:`repro.obs.trace` — per-request span trees propagated across
  threads (:func:`activate` / :func:`hook_span`) and processes
  (:meth:`RequestTrace.graft` over the worker fan-out handshake);
* :mod:`repro.obs.events` — a JSON-lines event sink shared by every
  process in the serving tree (``--event-log DIR`` /
  ``REPRO_EVENT_LOG``) plus the :func:`get_logger` logging pipeline
  replacing bare prints and ``traceback.print_exc``;
* :mod:`repro.obs.registry` — the unified :class:`MetricsRegistry`
  (histograms, counters, queue gauges, stage seconds, sampled process
  gauges) with Prometheus text exposition for the ``metrics`` op.
"""

from repro.obs.events import (
    EVENT_LOG_ENV,
    configure,
    configured_dir,
    emit,
    get_logger,
    read_events,
    set_role,
    summarize_events,
)
from repro.obs.registry import (
    BUCKET_BOUNDS,
    LatencyHistogram,
    MetricsRegistry,
    process_rss_bytes,
    render_prometheus,
)
from repro.obs.render import render_event, render_event_summary, render_span_tree
from repro.obs.trace import (
    RequestTrace,
    Span,
    activate,
    current_trace,
    hook_span,
    mint_trace_id,
)

__all__ = [
    "BUCKET_BOUNDS",
    "EVENT_LOG_ENV",
    "LatencyHistogram",
    "MetricsRegistry",
    "RequestTrace",
    "Span",
    "activate",
    "configure",
    "configured_dir",
    "current_trace",
    "emit",
    "get_logger",
    "hook_span",
    "mint_trace_id",
    "process_rss_bytes",
    "read_events",
    "render_event",
    "render_event_summary",
    "render_prometheus",
    "render_span_tree",
    "set_role",
    "summarize_events",
]
