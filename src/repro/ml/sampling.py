"""Training-set sampling with undersampling.

ER suffers from extreme class imbalance: almost all candidate pairs are
non-matching.  The paper addresses it with undersampling — a balanced
training set with the same number of positive and negative labelled pairs —
and shows that as few as 25 instances per class are enough.

:func:`balanced_sample` draws such a training set from the labelled candidate
pairs; :func:`proportional_positive_sample` reproduces the older rule of
Supervised Meta-blocking [21] (5 % of the positive pairs in the ground truth,
matched by an equal number of negatives), used by the BCl2/CNP2 baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..utils.rng import SeedLike, make_rng, sample_without_replacement


@dataclass(frozen=True)
class TrainingSample:
    """Indices (into the candidate set) and labels of a training sample."""

    indices: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return int(self.indices.size)

    @property
    def positives(self) -> int:
        """Number of positive instances in the sample."""
        return int(self.labels.sum())

    @property
    def negatives(self) -> int:
        """Number of negative instances in the sample."""
        return len(self) - self.positives


def balanced_sample(
    labels: np.ndarray,
    size: int,
    seed: SeedLike = None,
) -> TrainingSample:
    """Draw a balanced training sample of ``size`` labelled pairs.

    Parameters
    ----------
    labels:
        Boolean array over all candidate pairs (True = matching).
    size:
        Total number of labelled instances; half are drawn from each class.
        When a class has fewer members than requested, all of them are used
        (the sample is then smaller/imbalanced, mirroring reality on tiny
        datasets).
    seed:
        Seed or generator controlling the draw.
    """
    if size < 2:
        raise ValueError("size must be at least 2 (one instance per class)")
    labels = np.asarray(labels).astype(bool)
    rng = make_rng(seed)

    positive_indices = np.flatnonzero(labels)
    negative_indices = np.flatnonzero(~labels)
    if positive_indices.size == 0 or negative_indices.size == 0:
        raise ValueError("both classes must be present among the candidate pairs")

    per_class = size // 2
    chosen_positive = positive_indices[
        sample_without_replacement(rng, positive_indices.size, per_class)
    ]
    chosen_negative = negative_indices[
        sample_without_replacement(rng, negative_indices.size, per_class)
    ]

    indices = np.concatenate([chosen_positive, chosen_negative])
    order = rng.permutation(indices.size)
    indices = indices[order]
    return TrainingSample(indices=indices, labels=labels[indices])


def proportional_positive_sample(
    labels: np.ndarray,
    positive_fraction: float = 0.05,
    seed: SeedLike = None,
    min_per_class: int = 5,
) -> TrainingSample:
    """Training sample of Supervised Meta-blocking [21].

    Draws ``positive_fraction`` of the positive candidate pairs (at least
    ``min_per_class``) and an equal number of negative pairs.
    """
    if not 0.0 < positive_fraction <= 1.0:
        raise ValueError("positive_fraction must be in (0, 1]")
    labels = np.asarray(labels).astype(bool)
    rng = make_rng(seed)

    positive_indices = np.flatnonzero(labels)
    negative_indices = np.flatnonzero(~labels)
    if positive_indices.size == 0 or negative_indices.size == 0:
        raise ValueError("both classes must be present among the candidate pairs")

    per_class = max(min_per_class, int(round(positive_fraction * positive_indices.size)))
    per_class = min(per_class, positive_indices.size)

    chosen_positive = positive_indices[
        sample_without_replacement(rng, positive_indices.size, per_class)
    ]
    chosen_negative = negative_indices[
        sample_without_replacement(rng, negative_indices.size, min(per_class, negative_indices.size))
    ]

    indices = np.concatenate([chosen_positive, chosen_negative])
    order = rng.permutation(indices.size)
    indices = indices[order]
    return TrainingSample(indices=indices, labels=labels[indices])


def train_test_split_indices(
    n_samples: int,
    test_fraction: float = 0.25,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``range(n_samples)`` into train/test index arrays."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if n_samples < 2:
        raise ValueError("need at least 2 samples to split")
    rng = make_rng(seed)
    permutation = rng.permutation(n_samples)
    test_size = max(1, int(round(test_fraction * n_samples)))
    return permutation[test_size:], permutation[:test_size]
