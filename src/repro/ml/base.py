"""Base interfaces for the machine-learning substrate.

The paper only requires a *binary probabilistic classifier*: something that
can be fit on labelled feature vectors and then return, for every candidate
pair, the probability of belonging to the positive (matching) class.  Every
classifier in :mod:`repro.ml` implements :class:`ProbabilisticClassifier`,
the minimal scikit-learn-like contract the pruning algorithms consume.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..utils.validation import check_binary_labels, check_consistent_length, check_matrix


class ProbabilisticClassifier(ABC):
    """A binary classifier exposing calibrated positive-class probabilities."""

    @abstractmethod
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "ProbabilisticClassifier":
        """Fit the model on an ``(n, d)`` feature matrix and 0/1 labels."""

    @abstractmethod
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return the positive-class probability for every row of ``features``."""

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Return hard 0/1 predictions by thresholding the probabilities."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)

    # -- shared validation -------------------------------------------------------
    @staticmethod
    def _validate_training_data(
        features: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        matrix = check_matrix(features)
        targets = check_binary_labels(labels)
        check_consistent_length(matrix, targets)
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        if np.unique(targets).size < 2:
            raise ValueError("training set must contain both classes")
        return matrix, targets

    def _check_is_fitted(self, attribute: str) -> None:
        if getattr(self, attribute, None) is None:
            raise RuntimeError(
                f"{type(self).__name__} must be fit before calling predict/predict_proba"
            )
