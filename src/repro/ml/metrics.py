"""Classification metrics on labelled pairs.

These operate on plain prediction/label arrays and back the evaluation module
(which additionally accounts for duplicates missed by blocking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class ConfusionCounts:
    """True/false positive/negative counts of a binary decision."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        """Total number of decisions."""
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    def as_dict(self) -> Dict[str, int]:
        """Return the counts as a plain dictionary."""
        return {
            "TP": self.true_positives,
            "FP": self.false_positives,
            "TN": self.true_negatives,
            "FN": self.false_negatives,
        }


def confusion_counts(labels: np.ndarray, predictions: np.ndarray) -> ConfusionCounts:
    """Compute confusion counts from boolean/0-1 arrays."""
    labels = np.asarray(labels).astype(bool)
    predictions = np.asarray(predictions).astype(bool)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must have the same shape")
    return ConfusionCounts(
        true_positives=int(np.sum(labels & predictions)),
        false_positives=int(np.sum(~labels & predictions)),
        true_negatives=int(np.sum(~labels & ~predictions)),
        false_negatives=int(np.sum(labels & ~predictions)),
    )


def precision_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of predicted positives that are true positives."""
    counts = confusion_counts(labels, predictions)
    denominator = counts.true_positives + counts.false_positives
    return counts.true_positives / denominator if denominator else 0.0


def recall_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of actual positives that are predicted positive."""
    counts = confusion_counts(labels, predictions)
    denominator = counts.true_positives + counts.false_negatives
    return counts.true_positives / denominator if denominator else 0.0


def f1_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(labels, predictions)
    recall = recall_score(labels, predictions)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def accuracy_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of correct decisions."""
    counts = confusion_counts(labels, predictions)
    return (
        (counts.true_positives + counts.true_negatives) / counts.total
        if counts.total
        else 0.0
    )


def roc_auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Used in tests to verify that the from-scratch classifiers actually rank
    matching pairs above non-matching ones.
    """
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    n_positive = int(labels.sum())
    n_negative = int((~labels).sum())
    if n_positive == 0 or n_negative == 0:
        raise ValueError("ROC AUC requires both classes to be present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, len(scores) + 1)
    # average ranks for ties
    sorted_scores = scores[order]
    start = 0
    for end in range(1, len(sorted_scores) + 1):
        if end == len(sorted_scores) or sorted_scores[end] != sorted_scores[start]:
            average = (start + end + 1) / 2.0
            ranks[order[start:end]] = average
            start = end
    positive_rank_sum = ranks[labels].sum()
    u_statistic = positive_rank_sum - n_positive * (n_positive + 1) / 2.0
    return float(u_statistic / (n_positive * n_negative))
