"""Gaussian Naive Bayes.

A third probabilistic classifier, used by the classifier-robustness ablation:
the paper argues the approach is insensitive to the choice of classification
algorithm, so the benches compare logistic regression, the linear SVM and
this model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import ProbabilisticClassifier


class GaussianNB(ProbabilisticClassifier):
    """Gaussian Naive Bayes with per-class feature means and variances.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every variance for
        numerical stability (same role as scikit-learn's parameter).
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing
        self.class_prior_: Optional[np.ndarray] = None
        self.theta_: Optional[np.ndarray] = None  # (2, d) per-class means
        self.var_: Optional[np.ndarray] = None  # (2, d) per-class variances

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GaussianNB":
        matrix, targets = self._validate_training_data(features, labels)
        n_features = matrix.shape[1]

        self.theta_ = np.zeros((2, n_features))
        self.var_ = np.zeros((2, n_features))
        self.class_prior_ = np.zeros(2)
        epsilon = self.var_smoothing * float(np.var(matrix, axis=0).max() or 1.0)

        for label in (0, 1):
            members = matrix[targets == label]
            self.class_prior_[label] = members.shape[0] / matrix.shape[0]
            self.theta_[label] = members.mean(axis=0)
            self.var_[label] = members.var(axis=0) + epsilon
        self.var_[self.var_ == 0.0] = epsilon if epsilon > 0 else 1e-12
        return self

    def _joint_log_likelihood(self, features: np.ndarray) -> np.ndarray:
        self._check_is_fitted("theta_")
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.theta_.shape[1]:
            raise ValueError(
                f"expected a 2-D matrix with {self.theta_.shape[1]} features, "
                f"got shape {matrix.shape}"
            )
        joint = np.zeros((matrix.shape[0], 2))
        for label in (0, 1):
            prior = np.log(self.class_prior_[label]) if self.class_prior_[label] > 0 else -np.inf
            log_likelihood = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[label])
                + ((matrix - self.theta_[label]) ** 2) / self.var_[label],
                axis=1,
            )
            joint[:, label] = prior + log_likelihood
        return joint

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return the posterior probability of the positive class."""
        joint = self._joint_log_likelihood(features)
        # normalise in log space for stability
        maximum = joint.max(axis=1, keepdims=True)
        exponentials = np.exp(joint - maximum)
        posterior = exponentials / exponentials.sum(axis=1, keepdims=True)
        return posterior[:, 1]
