"""Feature scaling.

The weighting schemes have very different ranges (JS in [0, 1], CF-IBF
unbounded, LCP in the hundreds), so classifiers converge much better on
standardised features.  Both scalers follow the fit/transform contract and
are no-ops on degenerate (constant) columns.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.validation import check_matrix


class StandardScaler:
    """Standardise features to zero mean and unit variance."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation."""
        matrix = check_matrix(features)
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty matrix")
        self.mean_ = matrix.mean(axis=0)
        scale = matrix.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the learned standardisation."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fit before transform")
        matrix = check_matrix(features)
        if matrix.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {matrix.shape[1]}"
            )
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on ``features`` and return the transformed matrix."""
        return self.fit(features).transform(features)


class MinMaxScaler:
    """Scale features to the [0, 1] range column-wise."""

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        """Learn per-column minimum and range."""
        matrix = check_matrix(features)
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty matrix")
        self.min_ = matrix.min(axis=0)
        spread = matrix.max(axis=0) - self.min_
        spread[spread == 0.0] = 1.0
        self.range_ = spread
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the learned min-max scaling (values may exceed [0, 1] out of range)."""
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("MinMaxScaler must be fit before transform")
        matrix = check_matrix(features)
        if matrix.shape[1] != self.min_.shape[0]:
            raise ValueError(
                f"expected {self.min_.shape[0]} features, got {matrix.shape[1]}"
            )
        return (matrix - self.min_) / self.range_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on ``features`` and return the transformed matrix."""
        return self.fit(features).transform(features)
