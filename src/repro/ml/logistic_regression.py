"""L2-regularised logistic regression (from scratch, NumPy only).

The paper reports nearly identical results with scikit-learn's SVC and with
logistic regression (which is also what the scalability study uses through
Weka), so logistic regression is the default probabilistic classifier of
this reproduction.

Training uses iteratively re-weighted least squares (Newton-Raphson) with a
gradient-descent fallback when the Hessian is ill-conditioned, matching the
behaviour of mainstream implementations on small, balanced training sets such
as the 25+25 labelled pairs the paper recommends.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import ProbabilisticClassifier


def _sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(values)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_vals = np.exp(values[~positive])
    out[~positive] = exp_vals / (1.0 + exp_vals)
    return out


class LogisticRegression(ProbabilisticClassifier):
    """Binary logistic regression with L2 regularisation.

    Parameters
    ----------
    regularization:
        Inverse-variance (lambda) of the Gaussian prior on the weights; the
        intercept is never regularised.  0 disables regularisation.
    max_iter:
        Maximum number of Newton iterations.
    tol:
        Convergence tolerance on the parameter update's infinity norm.
    learning_rate:
        Step size for the gradient-descent fallback.
    random_state:
        Unused (training is deterministic); kept for interface parity with
        the other classifiers.
    """

    def __init__(
        self,
        regularization: float = 1e-3,
        max_iter: int = 100,
        tol: float = 1e-8,
        learning_rate: float = 0.1,
        random_state: Optional[int] = None,
    ) -> None:
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        if max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        self.regularization = regularization
        self.max_iter = max_iter
        self.tol = tol
        self.learning_rate = learning_rate
        self.random_state = random_state
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    # -- training -----------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        matrix, targets = self._validate_training_data(features, labels)
        n_samples, n_features = matrix.shape

        design = np.hstack([np.ones((n_samples, 1)), matrix])
        weights = np.zeros(n_features + 1)
        penalty = np.full(n_features + 1, self.regularization)
        penalty[0] = 0.0  # do not regularise the intercept

        self.n_iter_ = 0
        for _ in range(self.max_iter):
            self.n_iter_ += 1
            probabilities = _sigmoid(design @ weights)
            gradient = design.T @ (probabilities - targets) + penalty * weights
            variance = np.clip(probabilities * (1.0 - probabilities), 1e-10, None)
            hessian = (design * variance[:, None]).T @ design + np.diag(penalty)
            try:
                update = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                update = self.learning_rate * gradient
            weights -= update
            if np.max(np.abs(update)) < self.tol:
                break

        self.intercept_ = float(weights[0])
        self.coef_ = weights[1:].copy()
        return self

    # -- inference -----------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Return the raw linear scores ``X·w + b``."""
        self._check_is_fitted("coef_")
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"expected a 2-D matrix with {self.coef_.shape[0]} features, "
                f"got shape {matrix.shape}"
            )
        return matrix @ self.coef_ + self.intercept_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return the positive-class probability for every sample."""
        return _sigmoid(self.decision_function(features))
