"""From-scratch machine-learning substrate: classifiers, scaling, sampling, metrics."""

from .base import ProbabilisticClassifier
from .calibration import PlattScaler
from .logistic_regression import LogisticRegression
from .metrics import (
    ConfusionCounts,
    accuracy_score,
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
)
from .naive_bayes import GaussianNB
from .sampling import (
    TrainingSample,
    balanced_sample,
    proportional_positive_sample,
    train_test_split_indices,
)
from .scaling import MinMaxScaler, StandardScaler
from .svm import LinearSVC

__all__ = [
    "ConfusionCounts",
    "GaussianNB",
    "LinearSVC",
    "LogisticRegression",
    "MinMaxScaler",
    "PlattScaler",
    "ProbabilisticClassifier",
    "StandardScaler",
    "TrainingSample",
    "accuracy_score",
    "balanced_sample",
    "confusion_counts",
    "f1_score",
    "precision_score",
    "proportional_positive_sample",
    "recall_score",
    "roc_auc_score",
    "train_test_split_indices",
]
