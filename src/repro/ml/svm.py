"""Linear support vector classifier with calibrated probabilities.

The paper's default classifier is scikit-learn's SVC with probability
estimates enabled.  This module provides an equivalent from-scratch model: a
linear soft-margin SVM trained by Pegasos-style stochastic sub-gradient
descent on the hinge loss, whose decision scores are mapped to probabilities
by Platt scaling (:mod:`repro.ml.calibration`).

A linear kernel is sufficient here: the feature vectors are 4–9 dimensional
co-occurrence statistics that are close to linearly separable, which is also
why the paper observes logistic regression and SVC to behave identically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.rng import make_rng
from .base import ProbabilisticClassifier
from .calibration import PlattScaler


class LinearSVC(ProbabilisticClassifier):
    """Linear soft-margin SVM trained with the Pegasos sub-gradient method.

    Parameters
    ----------
    regularization:
        The Pegasos ``lambda``; larger values give a wider margin.
    epochs:
        Number of passes over the training set.
    random_state:
        Seed controlling the sampling order, fixed for reproducibility as the
        paper fixes the random state of its classifier.
    calibrate:
        When ``True`` (default) a Platt scaler maps decision scores to
        probabilities; when ``False``, a logistic squashing of the raw margin
        is used instead (exposed for the calibration ablation bench).
    """

    def __init__(
        self,
        regularization: float = 1e-2,
        epochs: int = 200,
        random_state: Optional[int] = 0,
        calibrate: bool = True,
    ) -> None:
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        if epochs < 1:
            raise ValueError("epochs must be at least 1")
        self.regularization = regularization
        self.epochs = epochs
        self.random_state = random_state
        self.calibrate = calibrate
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self._scaler: Optional[PlattScaler] = None

    # -- training -------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVC":
        matrix, targets = self._validate_training_data(features, labels)
        n_samples, n_features = matrix.shape
        signed = np.where(targets > 0.5, 1.0, -1.0)

        rng = make_rng(self.random_state)
        weights = np.zeros(n_features)
        bias = 0.0
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for index in order:
                step += 1
                learning_rate = 1.0 / (self.regularization * step)
                margin = signed[index] * (matrix[index] @ weights + bias)
                if margin < 1.0:
                    weights = (1.0 - learning_rate * self.regularization) * weights + (
                        learning_rate * signed[index]
                    ) * matrix[index]
                    bias += learning_rate * signed[index]
                else:
                    weights = (1.0 - learning_rate * self.regularization) * weights
                # Pegasos projection step keeps ||w|| bounded by 1/sqrt(lambda).
                norm = np.linalg.norm(weights)
                limit = 1.0 / np.sqrt(self.regularization)
                if norm > limit:
                    weights *= limit / norm

        self.coef_ = weights
        self.intercept_ = float(bias)

        if self.calibrate:
            scores = matrix @ weights + bias
            self._scaler = PlattScaler().fit(scores, targets)
        else:
            self._scaler = None
        return self

    # -- inference -------------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Return the signed distance to the separating hyperplane."""
        self._check_is_fitted("coef_")
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"expected a 2-D matrix with {self.coef_.shape[0]} features, "
                f"got shape {matrix.shape}"
            )
        return matrix @ self.coef_ + self.intercept_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return Platt-calibrated (or logistic-squashed) match probabilities."""
        scores = self.decision_function(features)
        if self._scaler is not None:
            return self._scaler.transform(scores)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))
