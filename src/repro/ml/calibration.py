"""Platt scaling — mapping raw classifier scores to probabilities.

The paper's SVC is used with ``probability=True``, i.e. with Platt-calibrated
outputs.  :class:`PlattScaler` fits a one-dimensional logistic regression
``P(match | score) = sigmoid(a·score + b)`` on the training scores, using the
target smoothing of Platt (1999) to avoid overfitting tiny training sets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class PlattScaler:
    """Fit ``sigmoid(a·score + b)`` to binary targets by Newton iterations."""

    def __init__(self, max_iter: int = 200, tol: float = 1e-10) -> None:
        if max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        self.max_iter = max_iter
        self.tol = tol
        self.a_: Optional[float] = None
        self.b_: Optional[float] = None

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "PlattScaler":
        """Fit the calibration map on raw ``scores`` and 0/1 ``labels``."""
        scores = np.asarray(scores, dtype=np.float64).ravel()
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if scores.shape != labels.shape:
            raise ValueError("scores and labels must have the same length")
        if scores.size == 0:
            raise ValueError("cannot calibrate on an empty sample")

        n_positive = float(np.sum(labels == 1.0))
        n_negative = float(np.sum(labels == 0.0))
        # Platt's smoothed targets guard against infinite weights when the
        # classes are separable (common with 25+25 training pairs).
        target_positive = (n_positive + 1.0) / (n_positive + 2.0)
        target_negative = 1.0 / (n_negative + 2.0)
        targets = np.where(labels == 1.0, target_positive, target_negative)

        a, b = 0.0, np.log((n_negative + 1.0) / (n_positive + 1.0))
        for _ in range(self.max_iter):
            raw = a * scores + b
            probabilities = 1.0 / (1.0 + np.exp(-np.clip(raw, -500, 500)))
            gradient_a = np.sum((probabilities - targets) * scores)
            gradient_b = np.sum(probabilities - targets)
            weight = np.clip(probabilities * (1.0 - probabilities), 1e-12, None)
            h_aa = np.sum(weight * scores * scores) + 1e-12
            h_ab = np.sum(weight * scores)
            h_bb = np.sum(weight) + 1e-12
            determinant = h_aa * h_bb - h_ab * h_ab
            if abs(determinant) < 1e-18:
                break
            delta_a = (h_bb * gradient_a - h_ab * gradient_b) / determinant
            delta_b = (h_aa * gradient_b - h_ab * gradient_a) / determinant
            a -= delta_a
            b -= delta_b
            if max(abs(delta_a), abs(delta_b)) < self.tol:
                break

        self.a_ = float(a)
        self.b_ = float(b)
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Map raw scores to calibrated probabilities."""
        if self.a_ is None or self.b_ is None:
            raise RuntimeError("PlattScaler must be fit before transform")
        scores = np.asarray(scores, dtype=np.float64).ravel()
        raw = self.a_ * scores + self.b_
        return 1.0 / (1.0 + np.exp(-np.clip(raw, -500, 500)))

    def fit_transform(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Fit the map and return the calibrated training probabilities."""
        return self.fit(scores, labels).transform(scores)
