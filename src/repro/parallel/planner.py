"""Shard planning: stable hash-partitioning of profiles and signatures.

The parallel engine partitions work along two axes:

* **entity shards** — :class:`ShardPlanner` hash-partitions the profiles of
  one or two collections into K shards for parallel tokenization.  Global
  node ids (the concatenated ``(first, second)`` positions every other
  subsystem uses) are assigned *before* sharding and travel with each shard,
  so the merged output is independent of the partitioning;
* **signature shards** — :func:`shard_of_signature` routes blocking
  signatures (tokens) to shards, which is how
  :class:`repro.incremental.ShardedMutableBlockIndex` splits its inverted
  index: blocks are partitioned disjointly by token, every shard sees every
  entity but only its own token subset.

Both use :func:`stable_hash` (CRC-32 of the UTF-8 bytes): Python's builtin
``hash`` is salted per process, which would make shard assignment — and with
it every merged array — non-reproducible across runs and worker counts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..datamodel import EntityCollection, EntityProfile


def stable_hash(text: str) -> int:
    """A process-stable 32-bit hash of a string (CRC-32 of UTF-8)."""
    return zlib.crc32(text.encode("utf-8"))


def shard_of_signature(signature: str, num_shards: int) -> int:
    """The shard owning a blocking signature (token)."""
    return stable_hash(signature) % num_shards


@dataclass(frozen=True)
class EntityShard:
    """One shard of profiles with their stable global node ids."""

    #: shard position in ``0 .. num_shards-1``
    shard_id: int
    #: the shard's profiles, in global node-id order
    profiles: Tuple[EntityProfile, ...]
    #: global node id of each profile (parallel to ``profiles``)
    nodes: np.ndarray

    def __len__(self) -> int:
        return len(self.profiles)


class ShardPlanner:
    """Hash-partition entity profiles into K shards with stable global ids.

    Parameters
    ----------
    num_shards:
        Number of shards (usually the worker count).

    The shard of a profile is ``stable_hash(entity_id) % K``, so the
    assignment is a pure function of the entity identifier — independent of
    arrival order, collection sizes and the process environment.  Node ids
    are the global concatenated positions; they are recorded per shard, so
    any per-shard output carrying node ids merges back into the global
    numbering without translation.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = num_shards

    def shard_of(self, entity_id: str) -> int:
        """The shard assigned to ``entity_id``."""
        return stable_hash(entity_id) % self.num_shards

    def plan(
        self,
        first: EntityCollection,
        second: Optional[EntityCollection] = None,
    ) -> List[EntityShard]:
        """Partition one or two collections into shards.

        Returns only non-empty shards.  Within a shard, profiles keep global
        node-id order, so per-shard tokenization emits memberships in a
        deterministic order regardless of K.
        """
        buckets: List[List[EntityProfile]] = [[] for _ in range(self.num_shards)]
        node_buckets: List[List[int]] = [[] for _ in range(self.num_shards)]
        node = 0
        for collection in (first, second):
            if collection is None:
                continue
            for profile in collection:
                shard = self.shard_of(profile.entity_id)
                buckets[shard].append(profile)
                node_buckets[shard].append(node)
                node += 1
        return [
            EntityShard(
                shard_id=shard,
                profiles=tuple(profiles),
                nodes=np.asarray(nodes, dtype=np.int64),
            )
            for shard, (profiles, nodes) in enumerate(zip(buckets, node_buckets))
            if profiles
        ]
