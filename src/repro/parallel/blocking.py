"""Sharded block preparation (the ``workers > 1`` blocking path).

The array blocking backend (:mod:`repro.blocking.arrayops`) runs block
preparation as four stages; this module parallelises the two that dominate
its profile and keeps the rest as the same single-pass array code:

* **tokenization** — the :class:`~repro.parallel.planner.ShardPlanner`
  hash-partitions the profiles into K shards (stable global node ids),
  workers tokenize and dictionary-encode their shard independently, and the
  parent merges the per-shard token streams: shard vocabularies are unioned
  into the global sorted vocabulary, shard codes remapped to global ranks,
  and the concatenated ``(code, node)`` stream handed to
  :func:`repro.blocking.arrayops.assemble_from_codes` — whose packed-key
  sorted dedup makes the result independent of the partitioning, i.e.
  bit-identical to single-pass assembly;
* **candidate extraction** — the per-membership expansion plan
  (:func:`repro.blocking.arrayops.pair_expansion_plan`) is computed once,
  the flat membership arrays are published to shared memory, and workers
  expand disjoint membership ranges into locally-deduplicated packed pair
  keys; the parent folds the per-worker key sets with two-way sorted merges.
  The distinct pair *set* of any contiguous partitioning is the same, so
  the merged keys equal the serial extraction's output array exactly.

Block Purging and Block Filtering remain single-pass array code: they are a
handful of ``bincount``/``lexsort`` passes over per-block aggregates —
memory-bandwidth bound and a rounding error in the stage profile.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..blocking.arrayops import (
    ArrayPreparation,
    DEFAULT_PAIR_CHUNK_KEYS,
    LazyBlockCollection,
    MembershipMatrix,
    assemble_from_codes,
    filter_matrix,
    merge_sorted_unique,
    pair_expansion_plan,
    purge_matrix,
)
from ..blocking.base import BlockingMethod
from ..blocking.token_blocking import TokenBlocking
from ..datamodel import CandidateSet, EntityCollection, EntityIndexSpace
from ..utils.timing import StageTimer
from .executor import ParallelExecutor
from .planner import ShardPlanner
from .worker import candidate_chunk, tokenize_shard


def assemble_blocks_sharded(
    method: BlockingMethod,
    first: EntityCollection,
    second: Optional[EntityCollection],
    executor: ParallelExecutor,
) -> MembershipMatrix:
    """Sharded tokenization + block assembly, bit-identical to the serial pass."""
    if second is None:
        index_space = EntityIndexSpace(len(first))
        name = f"{method.name}({first.name})"
    else:
        index_space = EntityIndexSpace(len(first), len(second))
        name = f"{method.name}({first.name},{second.name})"

    planner = ShardPlanner(executor.workers)
    shards = planner.plan(first, second)
    results = executor.starmap(
        tokenize_shard, [(shard.profiles, method) for shard in shards]
    )

    # merge the shard vocabularies into the global sorted vocabulary
    vocabulary = sorted(set().union(*(vocab for vocab, _, _ in results))) if results else []
    rank_of = {token: rank for rank, token in enumerate(vocabulary)}

    code_parts: List[np.ndarray] = []
    node_parts: List[np.ndarray] = []
    for shard, (vocab, codes, lengths) in zip(shards, results):
        if codes.size == 0:
            continue
        remap = np.fromiter(
            (rank_of[token] for token in vocab), dtype=np.int64, count=len(vocab)
        )
        code_parts.append(remap[codes])
        node_parts.append(np.repeat(shard.nodes, lengths))
    codes = np.concatenate(code_parts) if code_parts else np.empty(0, dtype=np.int64)
    nodes = np.concatenate(node_parts) if node_parts else np.empty(0, dtype=np.int64)
    return assemble_from_codes(
        codes, nodes, vocabulary, index_space, name, bilateral=second is not None
    )


def extract_candidate_keys_sharded(
    matrix: MembershipMatrix,
    executor: ParallelExecutor,
    chunk_keys: int = DEFAULT_PAIR_CHUNK_KEYS,
) -> np.ndarray:
    """Sharded candidate extraction: same distinct packed keys as the serial pass."""
    total = int(max(matrix.index_space.total, 1))
    n_memberships = matrix.nodes.size
    if n_memberships == 0 or matrix.num_blocks == 0:
        return np.empty(0, dtype=np.int64)

    repeats, right_begin, pair_offsets = pair_expansion_plan(matrix)
    total_pairs = int(pair_offsets[-1])
    if total_pairs == 0:
        return np.empty(0, dtype=np.int64)

    nodes_h = executor.publish(matrix.nodes)
    repeats_h = executor.publish(repeats)
    right_begin_h = executor.publish(right_begin)
    offsets_h = executor.publish(pair_offsets)

    # membership ranges balanced by pair count, not membership count
    quantiles = np.linspace(0, total_pairs, executor.workers + 1)
    bounds = np.searchsorted(pair_offsets, quantiles, side="left")
    bounds[0], bounds[-1] = 0, n_memberships
    tasks = [
        (nodes_h, repeats_h, right_begin_h, offsets_h, int(start), int(stop), total, chunk_keys)
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]
    parts = executor.starmap(candidate_chunk, tasks)

    seen: np.ndarray = np.empty(0, dtype=np.int64)
    for part in parts:
        seen = merge_sorted_unique(seen, part)
    return seen


def prepare_blocks_sharded(
    first: EntityCollection,
    second: Optional[EntityCollection],
    executor: ParallelExecutor,
    blocking: Optional[BlockingMethod] = None,
    purging_fraction: float = 0.5,
    filtering_ratio: float = 0.8,
    apply_purging: bool = True,
    apply_filtering: bool = True,
    timer: Optional[StageTimer] = None,
) -> ArrayPreparation:
    """The array block-preparation pipeline with sharded hot stages.

    Stage names and semantics match
    :func:`repro.blocking.arrayops.prepare_blocks_array`; the output is
    bit-identical (the ``workers`` equivalence suite asserts it).
    """
    timer = timer if timer is not None else StageTimer()
    method = blocking if blocking is not None else TokenBlocking()

    with timer.stage("blocking"):
        raw_matrix = assemble_blocks_sharded(method, first, second, executor)
        raw = LazyBlockCollection(raw_matrix)

    with timer.stage("purging"):
        if apply_purging:
            purged_matrix = purge_matrix(raw_matrix, purging_fraction)
            purged = LazyBlockCollection(purged_matrix)
        else:
            purged_matrix, purged = raw_matrix, raw

    with timer.stage("filtering"):
        if apply_filtering:
            filtered_matrix = filter_matrix(purged_matrix, filtering_ratio)
            filtered = (
                purged if filtered_matrix is purged_matrix else filtered_matrix.materialize()
            )
        else:
            filtered_matrix, filtered = purged_matrix, purged

    with timer.stage("candidate-extraction"):
        keys = extract_candidate_keys_sharded(filtered_matrix, executor)
        candidates = CandidateSet.from_packed_keys(keys, filtered_matrix.index_space)
        csr = filtered_matrix.csr()

    return ArrayPreparation(
        raw=raw, purged=purged, filtered=filtered, candidates=candidates, csr=csr
    )
