"""Parallel supervised pruning (the ``workers > 1`` pruning path).

Pruning cost is concentrated in the *cardinality-based* algorithms: CEP,
CNP and RCNP walk every valid candidate pair through Python bounded-queue
pushes.  Their retained sets are selections under the strict total order
(probability descending, packed candidate key ascending) — selection under a
strict total order is insertion-order-free, so it parallelises exactly:

* **CEP** — each worker selects the top-``K`` of a contiguous valid-pair
  range; the parent re-selects the top-``K`` of the merged selections.  A
  range's local top-``K`` necessarily contains every global survivor the
  range holds, so the merge is lossless;
* **CNP/RCNP** — the (node, pair) incidences of the valid pairs are grouped
  into a node-major CSR; workers select each node's top-``k`` over disjoint
  node ranges (per-node selections are independent), and the parent combines
  the per-side retention flags with the algorithm's OR/AND semantics;
* **BLAST** — per-node *maxima* are computed over disjoint pair ranges and
  combined element-wise (maximum is exact and order-free); the threshold
  comparison is then one vectorised pass.

WEP, WNP, RWNP and BCl stay on their single-pass kernels even when
``workers > 1``: they are pure vectorised array passes with nothing left to
parallelise, and their per-node *averages* are floating-point sums whose
value depends on accumulation order — chunked partial sums could flip a
``>=`` comparison in the last ulp and silently break the bit-identical
contract.  Delegating keeps every algorithm exact by construction.

All parallel paths produce bit-identical retained masks to
``algorithm.prune`` (the ``workers=1`` oracle); the equivalence suite
asserts this for every algorithm.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.pruning.base import SupervisedPruningAlgorithm
from ..core.pruning.cardinality_based import (
    SupervisedCEP,
    SupervisedCNP,
    cep_budget,
    cnp_budget,
)
from ..core.pruning.weight_based import SupervisedBLAST
from ..datamodel import BlockCollection, CandidateSet
from .executor import ParallelExecutor, split_ranges
from .worker import blast_maxima_chunk, cep_chunk, cnp_node_range


def parallel_prune(
    algorithm: SupervisedPruningAlgorithm,
    probabilities: np.ndarray,
    candidates: CandidateSet,
    blocks: Optional[BlockCollection],
    executor: ParallelExecutor,
) -> np.ndarray:
    """Prune with worker parallelism where it is exact and profitable.

    Dispatches CEP, CNP/RCNP and BLAST to their sharded implementations;
    every other algorithm runs its own (vectorised, exact) ``prune``.
    """
    if isinstance(algorithm, SupervisedCEP):
        return _prune_cep(algorithm, probabilities, candidates, blocks, executor)
    if isinstance(algorithm, SupervisedCNP):
        return _prune_cnp(algorithm, probabilities, candidates, blocks, executor)
    if isinstance(algorithm, SupervisedBLAST):
        return _prune_blast(algorithm, probabilities, candidates, executor)
    return algorithm.prune(probabilities, candidates, blocks)


def _resolve_budget(algorithm, blocks, derive, what: str) -> int:
    if algorithm.budget is not None:
        return algorithm.budget
    if blocks is None:
        raise ValueError(
            f"{algorithm.name} needs the block collection to derive its budget {what}"
        )
    return derive(blocks)


def _prune_cep(
    algorithm: SupervisedCEP,
    probabilities: np.ndarray,
    candidates: CandidateSet,
    blocks: Optional[BlockCollection],
    executor: ParallelExecutor,
) -> np.ndarray:
    probabilities = algorithm._validate(probabilities, candidates)
    budget = _resolve_budget(algorithm, blocks, cep_budget, "K")

    valid = algorithm.valid_mask(probabilities)
    mask = np.zeros(len(candidates), dtype=bool)
    valid_positions = np.flatnonzero(valid)
    if valid_positions.size == 0:
        return mask
    if valid_positions.size <= budget:
        mask[valid_positions] = True
        return mask

    keys = candidates.packed_keys()
    probabilities_h = executor.publish(probabilities)
    keys_h = executor.publish(keys)
    valid_h = executor.publish(valid_positions)
    tasks = [
        (probabilities_h, keys_h, valid_h, start, stop, budget)
        for start, stop in split_ranges(valid_positions.size, executor.workers)
    ]
    merged = np.concatenate(executor.starmap(cep_chunk, tasks))
    order = np.lexsort((keys[merged], -probabilities[merged]))
    mask[merged[order[:budget]]] = True
    return mask


def _prune_cnp(
    algorithm: SupervisedCNP,
    probabilities: np.ndarray,
    candidates: CandidateSet,
    blocks: Optional[BlockCollection],
    executor: ParallelExecutor,
) -> np.ndarray:
    probabilities = algorithm._validate(probabilities, candidates)
    budget = _resolve_budget(algorithm, blocks, cnp_budget, "k")

    mask = np.zeros(len(candidates), dtype=bool)
    valid_positions = np.flatnonzero(algorithm.valid_mask(probabilities))
    n_valid = valid_positions.size
    if n_valid == 0:
        return mask

    # (node, pair) incidences of the valid pairs: entry i < n_valid is the
    # left-side incidence of valid pair i, entry n_valid + i the right side
    total_nodes = candidates.index_space.total
    keys = candidates.packed_keys()
    entry_node = np.concatenate(
        (candidates.left[valid_positions], candidates.right[valid_positions])
    )
    entry_id = np.arange(2 * n_valid, dtype=np.int64)
    order = np.argsort(entry_node, kind="stable")
    grouped_node = entry_node[order]
    grouped_position = valid_positions[entry_id[order] % n_valid]
    node_ptr = np.zeros(total_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(grouped_node, minlength=total_nodes), out=node_ptr[1:])

    node_h = executor.publish(grouped_node)
    prob_h = executor.publish(probabilities[grouped_position])
    key_h = executor.publish(keys[grouped_position])
    id_h = executor.publish(entry_id[order])
    ptr_h = executor.publish(node_ptr)

    # node ranges balanced by incidence count
    quantiles = np.linspace(0, grouped_node.size, executor.workers + 1)
    bounds = np.searchsorted(node_ptr, quantiles, side="left")
    bounds[0], bounds[-1] = 0, total_nodes
    tasks = [
        (node_h, prob_h, key_h, id_h, ptr_h, int(begin), int(end), budget)
        for begin, end in zip(bounds[:-1], bounds[1:])
        if end > begin
    ]
    retained_entries = np.concatenate(
        [np.asarray(part, dtype=np.int64) for part in executor.starmap(cnp_node_range, tasks)]
        or [np.empty(0, dtype=np.int64)]
    )

    in_left = np.zeros(n_valid, dtype=bool)
    in_right = np.zeros(n_valid, dtype=bool)
    left_entries = retained_entries[retained_entries < n_valid]
    right_entries = retained_entries[retained_entries >= n_valid] - n_valid
    in_left[left_entries] = True
    in_right[right_entries] = True
    retained = in_left & in_right if algorithm.require_both else in_left | in_right
    mask[valid_positions[retained]] = True
    return mask


def _prune_blast(
    algorithm: SupervisedBLAST,
    probabilities: np.ndarray,
    candidates: CandidateSet,
    executor: ParallelExecutor,
) -> np.ndarray:
    probabilities = algorithm._validate(probabilities, candidates)
    valid = algorithm.valid_mask(probabilities)
    total_nodes = candidates.index_space.total
    valid_positions = np.flatnonzero(valid)
    maxima = np.zeros(total_nodes, dtype=np.float64)
    if valid_positions.size:
        left_h = executor.publish(candidates.left)
        right_h = executor.publish(candidates.right)
        probabilities_h = executor.publish(probabilities)
        valid_h = executor.publish(valid_positions)
        tasks = [
            (left_h, right_h, probabilities_h, valid_h, start, stop, total_nodes)
            for start, stop in split_ranges(valid_positions.size, executor.workers)
        ]
        for part in executor.starmap(blast_maxima_chunk, tasks):
            np.maximum(maxima, part, out=maxima)
    thresholds = algorithm.ratio * (maxima[candidates.left] + maxima[candidates.right])
    return valid & (probabilities >= thresholds)
