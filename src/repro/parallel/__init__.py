"""Sharded multiprocess execution engine.

The batch pipeline and the streaming index are single-process by default;
this subsystem shards their hot stages across worker processes behind the
``workers`` knob (``prepare_blocks``, ``generate_features``, the pipeline,
``ExperimentConfig.workers``, CLI ``--workers``):

* :class:`ShardPlanner` — stable hash-partitioning of entity profiles (and
  signatures) into K shards with global node ids;
* :class:`ParallelExecutor` — the worker pool plus its registry of
  ``multiprocessing.shared_memory``-backed NumPy inputs and outputs
  (CSR buffers are shared read-only with workers; per-pair aggregates are
  written into shared buffers at disjoint offsets — nothing per-pair ever
  crosses a process boundary through pickle);
* :mod:`repro.parallel.blocking` — sharded tokenization/assembly and
  candidate extraction, merged with packed-key sorted merges;
* :mod:`repro.parallel.features` — the pair co-occurrence pass and LCP over
  candidate-row / block ranges, reusing the :mod:`repro.weights.sparse`
  kernels unchanged;
* :mod:`repro.parallel.pruning` — sharded CEP/CNP/RCNP selection and BLAST
  maxima.

``workers=1`` is the exact single-process path and stays the oracle: every
parallel stage is constructed to be *bit-identical* to it for any worker
count (set unions, strict-total-order selections, per-pair-local
aggregation), and the equivalence suite in ``tests/parallel/`` asserts it
for blocks, candidate sets, all feature schemes and all pruning algorithms.
"""

from .blocking import (
    assemble_blocks_sharded,
    extract_candidate_keys_sharded,
    prepare_blocks_sharded,
)
from .executor import (
    WORKERS_AUTO,
    ParallelExecutor,
    WorkerCrashError,
    resolve_workers,
    split_ranges,
)
from .features import (
    parallel_local_candidate_counts,
    parallel_pair_cooccurrence,
    prefill_feature_caches,
)
from .planner import EntityShard, ShardPlanner, shard_of_signature, stable_hash
from .pruning import parallel_prune
from .shm import SharedArray, SharedArrayHandle, attach_view, detach_view

__all__ = [
    "EntityShard",
    "ParallelExecutor",
    "ShardPlanner",
    "SharedArray",
    "SharedArrayHandle",
    "WORKERS_AUTO",
    "WorkerCrashError",
    "assemble_blocks_sharded",
    "attach_view",
    "detach_view",
    "extract_candidate_keys_sharded",
    "parallel_local_candidate_counts",
    "parallel_pair_cooccurrence",
    "parallel_prune",
    "prefill_feature_caches",
    "prepare_blocks_sharded",
    "resolve_workers",
    "shard_of_signature",
    "split_ranges",
    "stable_hash",
]
