"""Worker-side kernels of the parallel execution engine.

Every function here is a module-level callable dispatched through
:meth:`repro.parallel.executor.ParallelExecutor.starmap` (picklable by
qualified name, importable under both ``fork`` and ``spawn`` start methods).
Large inputs arrive as :class:`~repro.parallel.shm.SharedArrayHandle`
references and are attached as zero-copy views; outputs are either written
into pre-allocated shared buffers at disjoint offsets (the co-occurrence
pass) or returned as small/result-sized arrays.

All kernels are deterministic and seedless — they reuse the single-process
NumPy kernels unchanged (:func:`repro.weights.sparse.compute_pair_cooccurrence`,
the sorted-unique dedup of :mod:`repro.blocking.arrayops`), which is what
makes every parallel stage bit-identical to its ``workers=1`` oracle.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..blocking.arrayops import merge_sorted_unique, sorted_unique
from ..blocking.base import BlockingMethod
from ..datamodel import EntityProfile
from ..weights.sparse import EntityBlockCSR, compute_pair_cooccurrence
from .shm import SharedArrayHandle, attach_view


# -- tokenization ----------------------------------------------------------------
def tokenize_shard(
    profiles: Sequence[EntityProfile], blocking: BlockingMethod
) -> Tuple[List[str], np.ndarray, np.ndarray]:
    """Tokenize one entity shard into a dictionary-encoded signature stream.

    Returns ``(vocabulary, codes, lengths)``: the shard's lexicographically
    sorted signature vocabulary, one code per signature occurrence (indexing
    that vocabulary, duplicates included) and the number of signatures per
    profile.  The parent merges the shard vocabularies and remaps the codes
    into the global sorted vocabulary — the same encoding
    :func:`repro.blocking.arrayops._dictionary_encode` produces in one pass.
    """
    code_of: Dict[str, int] = {}
    codes: List[int] = []
    lengths = np.empty(len(profiles), dtype=np.int64)
    setdefault = code_of.setdefault
    append = codes.append
    for position, signatures in enumerate(
        blocking.signature_lists(_ProfileSequence(profiles))
    ):
        lengths[position] = len(signatures)
        for signature in signatures:
            append(setdefault(signature, len(code_of)))
    codes_arr = np.asarray(codes, dtype=np.int64)
    vocabulary = sorted(code_of)
    if codes_arr.size:
        rank_of = {token: rank for rank, token in enumerate(vocabulary)}
        remap = np.fromiter(
            (rank_of[token] for token in code_of), dtype=np.int64, count=len(code_of)
        )
        codes_arr = remap[codes_arr]
    return vocabulary, codes_arr, lengths


def signature_lists_chunk(
    profiles: Sequence[EntityProfile], blocking: BlockingMethod
) -> List[List[str]]:
    """Raw per-profile signature lists for one chunk (sharded-index ingest)."""
    return blocking.signature_lists(_ProfileSequence(profiles))


class _ProfileSequence:
    """Duck-typed stand-in for :class:`EntityCollection` in worker kernels.

    ``BlockingMethod.signature_lists`` only iterates its argument, but
    building a real collection would re-validate entity-id uniqueness per
    chunk; this wrapper skips that.
    """

    def __init__(self, profiles: Sequence[EntityProfile]) -> None:
        self._profiles = profiles

    def __iter__(self):
        return iter(self._profiles)

    def __len__(self) -> int:
        return len(self._profiles)


# -- candidate extraction --------------------------------------------------------
def candidate_chunk(
    nodes_h: SharedArrayHandle,
    repeats_h: SharedArrayHandle,
    right_begin_h: SharedArrayHandle,
    offsets_h: SharedArrayHandle,
    start: int,
    stop: int,
    total: int,
    chunk_keys: int,
) -> np.ndarray:
    """Distinct packed candidate keys spawned by one membership range.

    The same expansion :func:`repro.blocking.arrayops.extract_candidate_keys`
    runs — ``np.repeat`` over per-membership pair counts plus offset
    arithmetic into the flat ``nodes`` array — restricted to memberships
    ``[start, stop)`` and flushed through sorted-unique merges every
    ``chunk_keys`` pairs to bound peak memory.
    """
    nodes = attach_view(nodes_h)
    repeats = attach_view(repeats_h)
    right_begin = attach_view(right_begin_h)
    pair_offsets = attach_view(offsets_h)
    total = np.int64(total)

    seen: np.ndarray = np.empty(0, dtype=np.int64)
    cursor = start
    while cursor < stop:
        end = int(
            np.searchsorted(
                pair_offsets, pair_offsets[cursor] + chunk_keys, side="right"
            )
        ) - 1
        end = min(max(end, cursor + 1), stop)
        chunk_repeats = repeats[cursor:end]
        chunk_total = int(pair_offsets[end] - pair_offsets[cursor])
        if chunk_total == 0:
            cursor = end
            continue
        left = np.repeat(nodes[cursor:end], chunk_repeats)
        within = np.arange(chunk_total, dtype=np.int64) - np.repeat(
            pair_offsets[cursor:end] - pair_offsets[cursor], chunk_repeats
        )
        right = nodes[np.repeat(right_begin[cursor:end], chunk_repeats) + within]
        seen = merge_sorted_unique(seen, sorted_unique(left * total + right))
        cursor = end
    return seen


# -- feature generation ----------------------------------------------------------
def cooccurrence_range(
    indptr_h: SharedArrayHandle,
    indices_h: SharedArrayHandle,
    num_blocks: int,
    inv_cardinality_h: SharedArrayHandle,
    inv_size_h: SharedArrayHandle,
    left_h: SharedArrayHandle,
    right_h: SharedArrayHandle,
    out_common_h: SharedArrayHandle,
    out_inv_cardinality_h: SharedArrayHandle,
    out_inv_size_h: SharedArrayHandle,
    start: int,
    stop: int,
) -> None:
    """Per-pair co-occurrence aggregates for candidate pairs ``[start, stop)``.

    Runs :func:`repro.weights.sparse.compute_pair_cooccurrence` — the
    single-process kernel, unchanged — on the pair slice and writes the three
    aggregate vectors into the shared output buffers at the same offsets.
    Slices are disjoint across workers, so no synchronisation is needed, and
    each pair's aggregates depend only on its own CSR rows — chunk boundaries
    cannot change any value.
    """
    csr = EntityBlockCSR(
        indptr=attach_view(indptr_h),
        indices=attach_view(indices_h),
        num_blocks=num_blocks,
    )
    left = attach_view(left_h)
    right = attach_view(right_h)
    aggregates = compute_pair_cooccurrence(
        csr,
        attach_view(inv_cardinality_h),
        attach_view(inv_size_h),
        left[start:stop],
        right[start:stop],
    )
    attach_view(out_common_h)[start:stop] = aggregates.common
    attach_view(out_inv_cardinality_h)[start:stop] = aggregates.sum_inverse_cardinality
    attach_view(out_inv_size_h)[start:stop] = aggregates.sum_inverse_size


def lcp_block_range(
    block_ptr_h: SharedArrayHandle,
    block_nodes_h: SharedArrayHandle,
    size_first: int,
    is_clean_clean: bool,
    total_nodes: int,
    begin_block: int,
    end_block: int,
    chunk_keys: int,
) -> np.ndarray:
    """Distinct directed ``node * total + neighbour`` keys of a block range.

    The array-native counterpart of the per-block expansion in
    :func:`repro.weights.sparse.sparse_local_candidate_counts`, fed from the
    block-major membership CSR instead of :class:`Block` objects.  Blocks
    whose second side is empty fall back to intra-block pairs, mirroring
    ``Block.is_bilateral``.  Because the result is a *set* of directed keys,
    the union over any partition of the blocks is exact.
    """
    block_ptr = attach_view(block_ptr_h)
    members_flat = attach_view(block_nodes_h)
    total = np.int64(total_nodes)

    seen: np.ndarray = np.empty(0, dtype=np.int64)
    buffered: List[np.ndarray] = []
    buffered_size = 0

    def flush() -> None:
        nonlocal seen, buffered, buffered_size
        if not buffered:
            return
        fresh = sorted_unique(np.concatenate(buffered))
        seen = merge_sorted_unique(seen, fresh)
        buffered = []
        buffered_size = 0

    for block in range(begin_block, end_block):
        members = members_flat[block_ptr[block] : block_ptr[block + 1]]
        if is_clean_clean:
            split = int(np.searchsorted(members, size_first))
        else:
            split = members.size
        first, second = members[:split], members[split:]
        if second.size > 0:
            if first.size == 0:
                continue
            a = np.repeat(first, second.size)
            b = np.tile(second, first.size)
            buffered.append(a * total + b)
            buffered.append(b * total + a)
            buffered_size += 2 * a.size
        else:
            if first.size < 2:
                continue
            a = np.repeat(first, first.size)
            b = np.tile(first, first.size)
            off_diagonal = a != b
            buffered.append(a[off_diagonal] * total + b[off_diagonal])
            buffered_size += int(off_diagonal.sum())
        if buffered_size >= chunk_keys:
            flush()
    flush()
    return seen


# -- cardinality pruning ---------------------------------------------------------
def cep_chunk(
    probabilities_h: SharedArrayHandle,
    keys_h: SharedArrayHandle,
    valid_positions_h: SharedArrayHandle,
    start: int,
    stop: int,
    budget: int,
) -> np.ndarray:
    """The top-``budget`` candidate positions of one valid-position range.

    Selection order is probability descending, packed key ascending — the
    strict total order CEP's bounded queue retains under.  A chunk's local
    top-``budget`` always contains every global survivor the chunk holds, so
    merging per-chunk selections and re-selecting is exact.
    """
    probabilities = attach_view(probabilities_h)
    keys = attach_view(keys_h)
    positions = attach_view(valid_positions_h)[start:stop]
    order = np.lexsort((keys[positions], -probabilities[positions]))
    return positions[order[:budget]]


def cnp_node_range(
    entry_node_h: SharedArrayHandle,
    entry_prob_h: SharedArrayHandle,
    entry_key_h: SharedArrayHandle,
    entry_id_h: SharedArrayHandle,
    node_ptr_h: SharedArrayHandle,
    begin_node: int,
    end_node: int,
    budget: int,
) -> np.ndarray:
    """The retained entry ids of every node in ``[begin_node, end_node)``.

    Entries are the (node, pair) incidences of the valid candidate pairs,
    grouped by node.  For each node the top-``budget`` entries by
    (probability desc, packed key asc) are retained — exactly the contents
    of CNP's per-entity bounded queue, computed by sorting because bounded
    top-k selection under a strict total order is insertion-order-free.
    """
    node_ptr = attach_view(node_ptr_h)
    lo, hi = int(node_ptr[begin_node]), int(node_ptr[end_node])
    nodes = attach_view(entry_node_h)[lo:hi]
    probabilities = attach_view(entry_prob_h)[lo:hi]
    keys = attach_view(entry_key_h)[lo:hi]
    entry_ids = attach_view(entry_id_h)[lo:hi]
    if nodes.size == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((keys, -probabilities, nodes))
    ordered_nodes = nodes[order]
    starts = np.flatnonzero(np.r_[True, ordered_nodes[1:] != ordered_nodes[:-1]])
    group_start = np.repeat(starts, np.diff(np.r_[starts, ordered_nodes.size]))
    rank = np.arange(ordered_nodes.size, dtype=np.int64) - group_start
    return entry_ids[order[rank < budget]]


def blast_maxima_chunk(
    left_h: SharedArrayHandle,
    right_h: SharedArrayHandle,
    probabilities_h: SharedArrayHandle,
    valid_positions_h: SharedArrayHandle,
    start: int,
    stop: int,
    total_nodes: int,
) -> np.ndarray:
    """Per-node maxima of the valid probabilities in one pair range.

    Maximum is exact and order-free, so element-wise combination of the
    per-chunk arrays reproduces the serial ``np.maximum.at`` pass bit for
    bit.
    """
    positions = attach_view(valid_positions_h)[start:stop]
    probabilities = attach_view(probabilities_h)[positions]
    maxima = np.zeros(total_nodes, dtype=np.float64)
    np.maximum.at(maxima, attach_view(left_h)[positions], probabilities)
    np.maximum.at(maxima, attach_view(right_h)[positions], probabilities)
    return maxima
