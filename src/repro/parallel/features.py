"""Parallel feature generation over the candidate-pair CSR.

Every co-occurrence weighting scheme of the sparse backend is plain array
arithmetic over two ingredients (:mod:`repro.weights.sparse`):

* the three per-pair co-occurrence aggregates (shared-block count and the
  two inverse-weight sums) — the batched intersection pass that dominates
  feature-generation run-time;
* per-entity vectors (``|B_i|``, ``||e_i||``, inverse sums, LCP counts).

This module computes the expensive ingredients across worker processes and
seeds them into the :class:`~repro.weights.BlockStatistics` caches, after
which the schemes run unchanged (and serially — they are element-wise
array expressions):

* the **co-occurrence pass** splits the candidate pairs into row ranges;
  each worker runs :func:`repro.weights.sparse.compute_pair_cooccurrence`
  — the single-process kernel, unchanged — over its range against the
  shared read-only CSR and writes the aggregate vectors into shared output
  buffers at its own offsets.  A pair's aggregates depend only on its own
  CSR rows, so the result is bit-identical for every worker count;
* **LCP** splits the *blocks* into ranges; each worker expands its blocks
  into distinct directed ``(node, neighbour)`` keys and the parent folds
  the per-range key sets with sorted-set unions — exact, because the
  directed-pair set of a block partition is partition-independent.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..blocking.arrayops import merge_sorted_unique
from ..datamodel import CandidateSet
from ..weights.sparse import PairCooccurrence
from ..weights.statistics import BlockStatistics
from .executor import ParallelExecutor, split_ranges
from .worker import cooccurrence_range, lcp_block_range

#: Per-worker flush bound for the LCP directed-key expansion (matches
#: :data:`repro.weights.sparse.DEFAULT_LCP_CHUNK_KEYS`).
LCP_CHUNK_KEYS: int = 1 << 22


def parallel_pair_cooccurrence(
    stats: BlockStatistics,
    candidates: CandidateSet,
    executor: ParallelExecutor,
) -> PairCooccurrence:
    """The per-pair co-occurrence aggregates, computed across workers.

    Bit-identical to
    :func:`repro.weights.sparse.compute_pair_cooccurrence` on the full
    candidate set (the ``workers=1`` oracle).
    """
    csr = stats.csr()
    n_pairs = len(candidates)
    if n_pairs == 0 or csr.num_blocks == 0 or csr.indices.size == 0:
        zeros = np.zeros(n_pairs, dtype=np.float64)
        return PairCooccurrence(zeros, zeros.copy(), zeros.copy())

    indptr_h = executor.publish(csr.indptr)
    indices_h = executor.publish(csr.indices)
    inv_cardinality_h = executor.publish(stats.inverse_block_cardinalities)
    inv_size_h = executor.publish(stats.inverse_block_sizes)
    left_h = executor.publish(candidates.left)
    right_h = executor.publish(candidates.right)

    out_common_h, out_common = executor.allocate_output((n_pairs,), np.float64)
    out_sic_h, out_sic = executor.allocate_output((n_pairs,), np.float64)
    out_sis_h, out_sis = executor.allocate_output((n_pairs,), np.float64)

    tasks = [
        (
            indptr_h,
            indices_h,
            csr.num_blocks,
            inv_cardinality_h,
            inv_size_h,
            left_h,
            right_h,
            out_common_h,
            out_sic_h,
            out_sis_h,
            start,
            stop,
        )
        for start, stop in split_ranges(n_pairs, executor.workers)
    ]
    executor.starmap(cooccurrence_range, tasks)

    result = PairCooccurrence(
        common=out_common.copy(),
        sum_inverse_cardinality=out_sic.copy(),
        sum_inverse_size=out_sis.copy(),
    )
    executor.release_outputs()
    return result


def parallel_local_candidate_counts(
    stats: BlockStatistics, executor: ParallelExecutor
) -> np.ndarray:
    """LCP per node, computed by unioning per-block-range directed-key sets.

    Matches :meth:`BlockStatistics.local_candidate_counts_sparse` exactly
    (the counts are set cardinalities — integers in float storage).
    """
    csr = stats.csr()
    total_nodes = csr.num_entities
    counts = np.zeros(total_nodes, dtype=np.float64)
    if csr.indices.size == 0 or csr.num_blocks == 0:
        return counts

    # invert the entity x block CSR into block-major memberships with
    # per-block sorted node ids (the layout the directed expansion needs)
    nodes = np.repeat(
        np.arange(total_nodes, dtype=np.int64), np.diff(csr.indptr)
    )
    packed = np.sort(csr.indices * np.int64(max(total_nodes, 1)) + nodes)
    block_nodes = packed % max(total_nodes, 1)
    block_counts = np.bincount(csr.indices, minlength=csr.num_blocks)
    block_ptr = np.zeros(csr.num_blocks + 1, dtype=np.int64)
    np.cumsum(block_counts, out=block_ptr[1:])

    block_ptr_h = executor.publish(block_ptr)
    block_nodes_h = executor.publish(block_nodes)
    index_space = stats.blocks.index_space

    tasks = [
        (
            block_ptr_h,
            block_nodes_h,
            index_space.size_first,
            index_space.is_clean_clean,
            total_nodes,
            begin,
            end,
            LCP_CHUNK_KEYS,
        )
        for begin, end in split_ranges(csr.num_blocks, executor.workers)
    ]
    parts = executor.starmap(lcp_block_range, tasks)

    seen: np.ndarray = np.empty(0, dtype=np.int64)
    for part in parts:
        seen = merge_sorted_unique(seen, part)
    if seen.size:
        counts += np.bincount(seen // total_nodes, minlength=total_nodes)
    return counts


def prefill_feature_caches(
    stats: BlockStatistics,
    candidates: CandidateSet,
    feature_set: Sequence[str],
    executor: ParallelExecutor,
) -> None:
    """Compute the expensive feature ingredients in parallel and seed them.

    After this call, every sparse-backend scheme in ``feature_set`` reads
    its aggregates from the statistics caches — the schemes themselves run
    unchanged and produce bit-identical matrices.
    """
    stats.seed_pair_cooccurrence(
        candidates, parallel_pair_cooccurrence(stats, candidates, executor)
    )
    if "LCP" in feature_set:
        stats.seed_local_candidate_counts(
            parallel_local_candidate_counts(stats, executor)
        )
