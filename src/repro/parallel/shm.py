"""Shared-memory NumPy arrays for the parallel execution engine.

The sharded executor (:mod:`repro.parallel.executor`) moves every large
array between the parent and its worker processes through
``multiprocessing.shared_memory`` segments: the parent copies an array into
a segment once, workers attach zero-copy read-only views by segment name,
and worker *outputs* with a known layout (the per-pair co-occurrence
aggregates) are written into pre-allocated shared segments at disjoint
offsets — no array ever crosses a process boundary through pickle.

Two pieces:

* :class:`SharedArray` — owner side: allocate a segment, expose the NumPy
  view and the picklable :class:`SharedArrayHandle`, unlink on close.
* :func:`attach_view` — worker side: attach a handle and return the view,
  caching attachments per process so repeated tasks reuse the mapping.

Python < 3.13 registers *attached* segments with the resource tracker as if
the attaching process owned them, which triggers spurious "leaked
shared_memory" warnings (and early unlinks) when workers exit; the attach
path unregisters the segment again, the standard workaround.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class SharedArrayHandle:
    """A picklable reference to a shared-memory NumPy array."""

    #: shared-memory segment name
    name: str
    #: array shape
    shape: Tuple[int, ...]
    #: dtype string (``np.dtype.str``, endianness included)
    dtype: str


class SharedArray:
    """A NumPy array backed by a shared-memory segment this process owns.

    Parameters
    ----------
    source:
        Array to copy into the segment, or ``None`` with ``shape``/``dtype``
        to allocate an uninitialised output buffer.
    """

    def __init__(
        self,
        source: np.ndarray = None,
        shape: Tuple[int, ...] = None,
        dtype=None,
    ) -> None:
        if source is not None:
            source = np.ascontiguousarray(source)
            shape, dtype = source.shape, source.dtype
        else:
            dtype = np.dtype(dtype)
        size = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        if source is not None:
            self.array[...] = source
        self.handle = SharedArrayHandle(
            name=self._shm.name, shape=tuple(shape), dtype=np.dtype(dtype).str
        )
        self._closed = False
        _OWNED[self._shm.name] = self.array

    def close(self) -> None:
        """Release the view and unlink the segment (owner responsibility)."""
        if self._closed:
            return
        self._closed = True
        _OWNED.pop(self._shm.name, None)
        self.array = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


#: Segments *owned* by this process, keyed by name.  When a worker kernel
#: runs inline in the owner (single-task dispatch, ``workers=1`` executors),
#: ``attach_view`` serves the owner's live view directly instead of opening
#: a second mapping — which would outlive ``close()``/unlink in the
#: process-local attach cache and could alias a recycled segment name.
_OWNED: Dict[str, np.ndarray] = {}

#: Process-local cache of attached segments, keyed by segment name.  Workers
#: attach each published input once and reuse the mapping across tasks; the
#: mappings live until the worker process exits (the pool is terminated when
#: its executor closes, so the cache cannot outlive the published segments).
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def attach_view(handle: SharedArrayHandle) -> np.ndarray:
    """Return the NumPy view of a shared array published by the parent.

    The segment is attached read-write (output buffers are written through
    the same path); callers by convention never write to *input* handles.
    """
    owned = _OWNED.get(handle.name)
    if owned is not None:
        return owned.reshape(handle.shape)
    segment = _ATTACHED.get(handle.name)
    if segment is None:
        # suppress the tracker registration the attach would perform: the
        # parent owns the segment and is the only process that may unlink
        # it.  (Unregistering *after* the attach is not equivalent: under
        # ``fork`` the tracker process is shared with the parent and its
        # name cache is a set, so a worker-side unregister would race the
        # parent's own unlink-time unregister.)
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=handle.name)
        finally:
            resource_tracker.register = original_register
        _ATTACHED[handle.name] = segment
    return np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf)


def detach_view(name: str) -> None:
    """Drop this process's cached attachment of segment ``name``.

    Safe to call for unknown or owner-side names (no-op).  Callers must not
    hold views into the segment past this point; the serve read path calls
    it after copying a worker's export out of shared memory, so superseded
    segments the worker has already unlinked do not linger in the attach
    cache (the parent-side half of the ExportSlots leak fix).
    """
    segment = _ATTACHED.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
    except (OSError, BufferError):  # pragma: no cover - platform dependent
        pass
