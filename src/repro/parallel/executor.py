"""The multiprocess execution engine behind the ``workers`` knob.

:class:`ParallelExecutor` owns a ``multiprocessing`` pool plus the registry
of shared-memory input arrays published to it.  Every parallel stage of the
library (sharded tokenization, candidate extraction, the pair co-occurrence
pass, cardinality pruning) goes through the same three-step protocol:

1. the parent publishes its large read-only inputs once
   (:meth:`ParallelExecutor.publish` — CSR buffers, candidate arrays,
   probability vectors) as shared-memory segments;
2. tasks are dispatched with :meth:`ParallelExecutor.starmap`, carrying only
   handles, scalars and deterministic range boundaries;
3. workers attach zero-copy views (:func:`repro.parallel.shm.attach_view`),
   run the same NumPy kernels the single-process path runs, and either write
   results into pre-allocated shared output buffers at disjoint offsets or
   return small result arrays.

``workers=1`` (the default everywhere) never constructs a pool: callers
short-circuit to the exact single-process implementation, which stays the
oracle the equivalence suite checks the parallel paths against.

Workers are *seedless by design*: no worker kernel draws random numbers, so
results are bit-identical for every worker count and the single RNG
entrypoint (:func:`repro.utils.rng.make_rng`) stays confined to the parent
process — see the worker-determinism notes in :mod:`repro.utils.rng`.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .shm import SharedArray, SharedArrayHandle

#: Sentinel accepted by every ``workers`` parameter: use all cores but one.
WORKERS_AUTO = "auto"

WorkersLike = Union[int, str, None]


def resolve_workers(workers: WorkersLike) -> int:
    """Normalise a ``workers`` knob value to a positive worker count.

    ``None`` and ``1`` mean the single-process path; ``"auto"`` picks
    ``os.cpu_count() - 1`` (at least 1) so one core stays free for the
    parent's merge work.

    Raises
    ------
    ValueError
        When the value is not a positive integer or ``"auto"``.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers == WORKERS_AUTO:
            return max(1, (os.cpu_count() or 2) - 1)
        if workers.isdigit() and int(workers) >= 1:
            return int(workers)
        raise ValueError(
            f"workers must be a positive integer or 'auto', got {workers!r}"
        )
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(f"workers must be a positive integer or 'auto', got {workers!r}")
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    return workers


def split_ranges(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``parts`` contiguous ``(start, stop)``
    ranges of near-equal size (deterministic, no empty ranges)."""
    parts = max(1, min(parts, n)) if n else 0
    bounds = np.linspace(0, n, parts + 1).astype(np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(parts)
        if bounds[i + 1] > bounds[i]
    ]


def _preferred_start_method() -> str:
    """``fork`` where available (zero-copy inherited state, fast startup);
    ``spawn`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class WorkerCrashError(RuntimeError):
    """A pool worker died (killed, OOMed, segfaulted) with tasks in flight.

    ``multiprocessing.Pool`` never completes a task whose worker died —
    without detection the parent waits forever.  The executor watches the
    pool's pids while collecting and raises this instead, naming the task
    indices (the shard numbers, for the sharded pipeline) still
    outstanding when the crash was detected.
    """

    def __init__(self, message: str, shards: Sequence[int] = ()) -> None:
        super().__init__(message)
        #: task indices that never completed (for the sharded stages these
        #: are exactly the shard numbers)
        self.shards = tuple(shards)


class ParallelExecutor:
    """A reusable worker pool plus its published shared-memory inputs.

    Parameters
    ----------
    workers:
        Worker count, ``"auto"``, or ``1``/``None`` for a no-op executor
        (tasks then run inline in the parent — callers normally short-circuit
        before building one, but the inline path keeps small inputs cheap).
    start_method:
        Override the multiprocessing start method (tests use it to exercise
        ``spawn`` portability).

    The executor is a context manager; :meth:`close` terminates the pool and
    unlinks every published segment.  Pools are created lazily on the first
    dispatched task, so constructing an executor costs nothing until a
    parallel stage actually runs.
    """

    def __init__(
        self, workers: WorkersLike = WORKERS_AUTO, start_method: Optional[str] = None
    ) -> None:
        self.workers = resolve_workers(workers)
        self._start_method = start_method or _preferred_start_method()
        self._pool = None
        #: id(source) -> (source, SharedArray); the source reference keeps
        #: the id stable for the cache's lifetime (id reuse after GC would
        #: otherwise alias a new array onto a stale segment)
        self._published: Dict[int, Tuple[np.ndarray, SharedArray]] = {}
        self._outputs: List[SharedArray] = []
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------
    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` already ran (closing again is a no-op)."""
        return self._closed

    def close(self) -> None:
        """Terminate the pool and unlink every shared segment.

        Idempotent: a second ``close()`` (or exiting a ``with`` block after
        an explicit close) is a no-op.  Segment cleanup runs even when the
        pool teardown raises, so a long-lived caller — the serving daemon
        keeps one executor for its whole lifetime — never leaks
        shared-memory segments on an unclean shutdown path.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._pool is not None:
                pool, self._pool = self._pool, None
                pool.terminate()
                pool.join()
        finally:
            try:
                for _, shared in self._published.values():
                    shared.close()
            finally:
                self._published.clear()
                self.release_outputs()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- shared-memory registry --------------------------------------------------
    def publish(self, array: np.ndarray) -> SharedArrayHandle:
        """Copy ``array`` into shared memory once; return its handle.

        Publication is idempotent per array object (keyed by identity, with
        the source kept referenced so the key stays valid), so the CSR
        buffers of one preparation are shared with the pool exactly once no
        matter how many stages read them.  Segments live until
        :meth:`close`.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        key = id(array)
        entry = self._published.get(key)
        if entry is None:
            entry = (array, SharedArray(array))
            self._published[key] = entry
        return entry[1].handle

    def allocate_output(self, shape, dtype) -> Tuple[SharedArrayHandle, np.ndarray]:
        """Allocate a zero-initialised shared output buffer.

        Returns the picklable handle (for workers) and the parent-side view.
        The buffer stays mapped until :meth:`release_outputs` or
        :meth:`close`; callers copy results out before releasing.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        shared = SharedArray(shape=tuple(shape), dtype=dtype)
        shared.array[...] = np.zeros((), dtype=dtype)
        self._outputs.append(shared)
        return shared.handle, shared.array

    def release_outputs(self) -> None:
        """Unlink every output buffer allocated so far."""
        for shared in self._outputs:
            shared.close()
        self._outputs.clear()

    # -- dispatch ----------------------------------------------------------------
    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError("executor is closed")
        if self._pool is None:
            context = multiprocessing.get_context(self._start_method)
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def _worker_pids(self) -> frozenset:
        pool = self._pool
        if pool is None:
            return frozenset()
        try:
            return frozenset(process.pid for process in pool._pool)
        except (AttributeError, TypeError):  # pragma: no cover - API drift
            return frozenset()

    #: how long (seconds) after a worker-pid change outstanding tasks get to
    #: finish before the pool is declared crashed; extended while results
    #: keep arriving (a pid change with progress is a pool restarting a
    #: worker, not a wedged pool)
    _crash_grace = 1.0

    def starmap(self, func: Callable, tasks: Sequence[tuple]) -> list:
        """Run ``func(*task)`` for every task, preserving task order.

        ``func`` must be a module-level function (picklable by qualified
        name — see :mod:`repro.parallel.worker`).  With one worker, or a
        single task, the calls run inline in the parent: same code path,
        no pool, which keeps the ``workers=1`` oracle and tiny inputs cheap.

        Raises
        ------
        WorkerCrashError
            When a pool worker dies with tasks in flight (a plain pool
            ``starmap`` would wait forever for the dead worker's task).
        """
        import time

        tasks = list(tasks)
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1:
            return [func(*task) for task in tasks]
        pool = self._ensure_pool()
        # apply_async per task (chunksize-1 semantics, order preserved by
        # index) so collection can interleave with pid watching
        pending = [pool.apply_async(func, task) for task in tasks]
        results: List = [None] * len(pending)
        outstanding = set(range(len(pending)))
        known_pids = self._worker_pids()
        suspicious = False  # a worker pid changed: some task may be lost
        crash_deadline = 0.0
        while outstanding:
            progressed = False
            for position in sorted(outstanding):
                if pending[position].ready():
                    results[position] = pending[position].get()
                    outstanding.discard(position)
                    progressed = True
            if not outstanding:
                break
            if progressed:
                if suspicious:
                    # survivors are still delivering; give the remaining
                    # tasks another grace window before declaring them lost
                    crash_deadline = time.monotonic() + self._crash_grace
                continue
            current_pids = self._worker_pids()
            if current_pids != known_pids:
                known_pids = current_pids
                suspicious = True
                crash_deadline = time.monotonic() + self._crash_grace
            if suspicious and time.monotonic() > crash_deadline:
                from ..obs import events

                events.emit(
                    "worker_crash",
                    pool="parallel-executor",
                    lost_tasks=sorted(outstanding),
                )
                raise WorkerCrashError(
                    "a pool worker died with tasks in flight "
                    f"(tasks {sorted(outstanding)} never completed)",
                    shards=sorted(outstanding),
                )
            pending[min(outstanding)].wait(0.02)
        return results
