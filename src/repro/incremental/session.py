"""Online matching sessions on top of the incremental block index.

A :class:`MatchingSession` wraps a *frozen* probabilistic classifier taken
from a batch pipeline run (:class:`FrozenModel`) and serves the full dynamic
workload: every ``insert`` registers the entity in a
:class:`MutableBlockIndex`, computes the feature vectors of the candidate
delta with a :class:`DeltaFeatureGenerator`, scores them with the frozen
model, and returns the entity's current matches under an *online* pruning
policy; ``remove`` retracts an entity and evicts its dead pairs from the
online aggregates; ``update`` corrects an entity in place; ``insert_bulk``
loads a batch through the index's one-pass bulk path.

The online policies:

* :class:`OnlineWEP` — the WEP average-probability threshold maintained as a
  running sum/count of valid scores; retractions subtract the dead pairs'
  insert-time scores from the running aggregate;
* :class:`OnlineTopK` — a CEP-style global top-K admission maintained with a
  :class:`repro.utils.pqueue.BoundedTopQueue`; retractions lazily delete the
  dead pairs from the queue.

Streaming answers are necessarily provisional: scores are taken at insert
time, while later mutations keep shifting the block statistics.  The exact
answer is always available through :meth:`MatchingSession.retained`, which
re-evaluates every live pair against the final statistics (reusing the
maintained CSR and pair registry — no re-blocking, no re-extraction),
renumbers the survivors into the canonical batch node space and applies the
configured *batch* pruning algorithm.  Any interleaving of inserts, removals,
updates and bulk loads ending in collection ``C`` therefore reproduces the
batch pipeline's retained pairs on ``C`` — for every pruning algorithm,
including the cardinality-based CEP/CNP/RCNP, whose probability ties are
broken deterministically by packed candidate key on both sides.  The
equivalence tests in ``tests/incremental/`` assert this exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.pruning import SupervisedPruningAlgorithm, get_pruning_algorithm
from ..core.pruning.base import VALIDITY_THRESHOLD
from ..datamodel import CandidateSet, EntityProfile
from ..ml import ProbabilisticClassifier, StandardScaler
from ..utils.pqueue import BoundedTopQueue
from .delta import DeltaFeatureGenerator
from .index import (
    BulkInsertDelta,
    MutableBlockIndex,
    RetractionDelta,
    UnknownEntityError,
    _Growable,
    pack_pair_keys,
)


@dataclass(frozen=True)
class FrozenModel:
    """A trained classifier (plus its scaler) detached from the batch pipeline.

    Parameters
    ----------
    classifier:
        A fitted :class:`ProbabilisticClassifier`.
    scaler:
        The :class:`StandardScaler` the classifier was trained behind, or
        ``None`` when features were not standardised.
    feature_set:
        The weighting-scheme names the classifier expects, in order.
    """

    classifier: ProbabilisticClassifier
    scaler: Optional[StandardScaler]
    feature_set: Tuple[str, ...]

    def score(self, features: np.ndarray) -> np.ndarray:
        """Match probability of every feature row."""
        if features.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        values = self.scaler.transform(features) if self.scaler is not None else features
        return self.classifier.predict_proba(values)

    @classmethod
    def from_batch(cls, result) -> "FrozenModel":
        """Freeze the classifier a batch pipeline run trained.

        ``result`` is a :class:`repro.core.pipeline.MetaBlockingResult`; the
        pipeline records its fitted classifier, scaler and feature set there.
        """
        if result.classifier is None:
            raise ValueError(
                "the batch result carries no classifier; re-run the pipeline "
                "(older results predate frozen-model support)"
            )
        return cls(
            classifier=result.classifier,
            scaler=result.scaler,
            feature_set=tuple(result.feature_set),
        )


class OnlinePruningPolicy:
    """Decide, per mutation, which freshly scored pairs currently qualify."""

    name: str = "online"

    def admit(
        self,
        probabilities: np.ndarray,
        positions: np.ndarray,
        keys: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Update the online state with the new scores; return an admit mask.

        ``keys`` are optional packed candidate keys used for deterministic
        tie-breaking by policies that rank pairs.
        """
        raise NotImplementedError

    def retract(self, probabilities: np.ndarray, positions: np.ndarray) -> None:
        """Evict retracted pairs (given their insert-time scores) from the
        online state.  The default is a no-op for stateless policies."""


class OnlineWEP(OnlinePruningPolicy):
    """WEP's average-probability threshold as a running aggregate.

    Keeps the sum and count of all *valid* scores (probability >= 0.5) seen
    so far; a new pair is admitted when its score is valid and reaches the
    current running average — the streaming analogue of Algorithm 1.
    Retracting a pair removes its insert-time score from the running
    aggregate, so deleted entities stop weighing on the threshold.
    """

    name = "wep"

    def __init__(self) -> None:
        self._valid_sum = 0.0
        self._valid_count = 0

    @property
    def threshold(self) -> float:
        """The current admission threshold (running average of valid scores)."""
        if self._valid_count == 0:
            return VALIDITY_THRESHOLD
        return self._valid_sum / self._valid_count

    def admit(
        self,
        probabilities: np.ndarray,
        positions: np.ndarray,
        keys: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        valid = probabilities >= VALIDITY_THRESHOLD
        self._valid_sum += float(probabilities[valid].sum())
        self._valid_count += int(valid.sum())
        return valid & (probabilities >= self.threshold)

    def retract(self, probabilities: np.ndarray, positions: np.ndarray) -> None:
        valid = probabilities >= VALIDITY_THRESHOLD
        self._valid_sum -= float(probabilities[valid].sum())
        self._valid_count -= int(valid.sum())
        if self._valid_count <= 0:
            # reset exactly; repeated add/subtract cycles must not leave
            # float residue behind an empty aggregate
            self._valid_sum = 0.0
            self._valid_count = 0


class OnlineTopK(OnlinePruningPolicy):
    """CEP-style global top-K admission over a bounded priority queue.

    Parameters
    ----------
    capacity:
        The retention budget K.  The queue's minimum retained weight is the
        admission threshold, exactly as in Algorithm 4; evicted pairs simply
        stop being reported (earlier answers are provisional by design).
        Retracted pairs are lazily deleted from the queue, freeing their
        budget slots immediately.
    """

    name = "topk"

    def __init__(self, capacity: int) -> None:
        self._queue: BoundedTopQueue[int] = BoundedTopQueue(capacity)

    @property
    def threshold(self) -> float:
        """The current admission threshold (minimum retained weight)."""
        return max(self._queue.min_weight, VALIDITY_THRESHOLD)

    def admit(
        self,
        probabilities: np.ndarray,
        positions: np.ndarray,
        keys: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        mask = np.zeros(probabilities.size, dtype=bool)
        key_list = keys.tolist() if keys is not None else [None] * probabilities.size
        for offset, (probability, position, key) in enumerate(
            zip(probabilities.tolist(), positions.tolist(), key_list)
        ):
            if probability < VALIDITY_THRESHOLD:
                continue
            evicted = self._queue.push(
                probability, int(position), key=None if key is None else int(key)
            )
            mask[offset] = evicted != int(position)
        return mask

    def retract(self, probabilities: np.ndarray, positions: np.ndarray) -> None:
        for position in positions.tolist():
            self._queue.discard(int(position))


def _resolve_online_policy(
    online: Union[str, OnlinePruningPolicy, None], top_k: int
) -> OnlinePruningPolicy:
    if isinstance(online, OnlinePruningPolicy):
        return online
    if online is None or online == "wep":
        return OnlineWEP()
    if online == "topk":
        return OnlineTopK(top_k)
    raise ValueError(f"unknown online policy {online!r}; expected 'wep' or 'topk'")


@dataclass(frozen=True)
class InsertResult:
    """The outcome of one streaming insert."""

    #: the inserted entity's identifier
    entity_id: str
    #: node id assigned by the session's index
    node: int
    #: number of candidate pairs the insert introduced
    num_new_pairs: int
    #: match probability of every new pair (aligned with ``counterpart_ids``)
    probabilities: np.ndarray
    #: entity ids of the new candidate counterparts
    counterpart_ids: Tuple[str, ...]
    #: (counterpart id, probability) of the pairs the online policy admitted,
    #: ordered by decreasing probability
    matches: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class RemovalResult:
    """The outcome of one streaming removal."""

    #: the removed entity's identifier
    entity_id: str
    #: node id the entity held (never reused)
    node: int
    #: number of candidate pairs the removal retracted
    num_retracted_pairs: int
    #: entity ids of the retracted counterparts
    counterpart_ids: Tuple[str, ...]


@dataclass(frozen=True)
class UpdateResult:
    """The outcome of one streaming in-place correction."""

    #: the retraction of the old version
    removed: RemovalResult
    #: the insert of the new version (fresh node id, freshly scored pairs)
    inserted: InsertResult


@dataclass(frozen=True)
class BulkInsertResult:
    """The outcome of one bulk load."""

    #: the inserted entities' identifiers, in input order
    entity_ids: Tuple[str, ...]
    #: node ids assigned by the session's index, in input order
    nodes: np.ndarray
    #: number of candidate pairs the batch introduced
    num_new_pairs: int
    #: match probability of every new pair (registry order)
    probabilities: np.ndarray
    #: number of new pairs the online policy admitted
    num_admitted: int


@dataclass
class SessionResult:
    """The exact (batch-equivalent) answer over all live streamed entities."""

    #: every live candidate pair
    candidates: CandidateSet
    #: match probability of every pair under the final statistics
    probabilities: np.ndarray
    #: boolean mask over ``candidates`` (True = retained)
    retained_mask: np.ndarray
    #: retained pairs as entity-id tuples, ordered (first side, second side)
    #: for bilateral sessions and by insertion order for unilateral ones
    retained_ids: Tuple[Tuple[str, str], ...]

    @property
    def retained_count(self) -> int:
        """Number of retained candidate pairs."""
        return int(self.retained_mask.sum())

    def retained_id_set(self) -> set:
        """The retained pairs as a set of entity-id tuples."""
        return set(self.retained_ids)


class MatchingSession:
    """Serve entity inserts, removals and updates against a frozen
    batch-trained matcher.

    Parameters
    ----------
    model:
        The frozen classifier + scaler + feature set (see
        :meth:`FrozenModel.from_batch`).
    bilateral:
        ``True`` for Clean-Clean streams (two sources, cross-source pairs),
        ``False`` for Dirty streams.
    blocking:
        Signature extractor for the underlying index (default token
        blocking).
    pruning:
        The *batch* pruning algorithm name or instance applied by
        :meth:`retained` (default BLAST, the paper's best weight-based
        algorithm).  All algorithms — weight- and cardinality-based — are
        exactly batch-equivalent.
    online:
        The per-insert online policy: ``"wep"`` (default), ``"topk"``, or an
        :class:`OnlinePruningPolicy` instance.
    top_k:
        Budget for the ``"topk"`` policy.
    """

    def __init__(
        self,
        model: FrozenModel,
        bilateral: bool = False,
        blocking=None,
        pruning: Union[str, SupervisedPruningAlgorithm] = "BLAST",
        online: Union[str, OnlinePruningPolicy, None] = "wep",
        top_k: int = 1000,
    ) -> None:
        self.model = model
        self.index = MutableBlockIndex(blocking=blocking, bilateral=bilateral)
        self.features = DeltaFeatureGenerator(self.index, model.feature_set)
        self.pruning = (
            get_pruning_algorithm(pruning) if isinstance(pruning, str) else pruning
        )
        self.online = _resolve_online_policy(online, top_k)
        #: probability of every registry position at the time it was inserted
        #: (provisional; retracted positions keep their last score)
        self._insert_probabilities = _Growable(np.float64, capacity=1024)

    # -- introspection ---------------------------------------------------------
    @property
    def num_entities(self) -> int:
        """Number of live streamed entities."""
        return self.index.num_entities

    @property
    def num_pairs(self) -> int:
        """Number of live distinct candidate pairs."""
        return self.index.num_pairs

    def insert_time_probabilities(self) -> np.ndarray:
        """The provisional score every registry position received at insert
        time (including positions whose pairs were since retracted)."""
        return self._insert_probabilities.view().copy()

    # -- streaming -------------------------------------------------------------
    def insert(self, profile: EntityProfile, side: int = 0) -> InsertResult:
        """Insert one entity; return its scored + online-pruned matches."""
        delta = self.index.add_entity(profile, side=side)
        matrix = self.features.generate_delta(delta)
        probabilities = self.model.score(matrix.values)
        self._insert_probabilities.extend(probabilities)
        keys = pack_pair_keys(
            delta.counterparts, np.full(delta.counterparts.size, delta.node)
        )
        admitted = self.online.admit(probabilities, delta.pair_positions, keys=keys)

        counterpart_ids = tuple(
            self.index.entity_id(int(node)) for node in delta.counterparts
        )
        order = np.argsort(-probabilities[admitted], kind="stable")
        admitted_offsets = np.flatnonzero(admitted)[order]
        matches = tuple(
            (counterpart_ids[int(offset)], float(probabilities[int(offset)]))
            for offset in admitted_offsets
        )
        return InsertResult(
            entity_id=delta.entity_id,
            node=delta.node,
            num_new_pairs=delta.num_new_pairs,
            probabilities=probabilities,
            counterpart_ids=counterpart_ids,
            matches=matches,
        )

    def insert_many(
        self, profiles: Iterable[EntityProfile], side: int = 0
    ) -> List[InsertResult]:
        """Insert several entities from the same side, one at a time."""
        return [self.insert(profile, side=side) for profile in profiles]

    def insert_bulk(
        self, profiles: Sequence[EntityProfile], side: int = 0
    ) -> BulkInsertResult:
        """Load a batch of same-side entities through the index's bulk path.

        The whole batch is tokenized, merged into the live CSR and scored in
        one pass.  The *index state* (and therefore :meth:`retained`) ends
        up identical to one-at-a-time inserts; the *provisional* online
        admissions may differ, because the policy sees the batch's scores
        together — OnlineWEP folds them all into its running average before
        thresholding any of them, where sequential inserts would threshold
        each pair against the average as of its own arrival.
        """
        delta = self.index.add_entities_bulk(profiles, side=side)
        candidates = self.index.bulk_candidate_set(delta)
        matrix = self.features.generate(candidates)
        probabilities = self.model.score(matrix.values)
        self._insert_probabilities.extend(probabilities)
        keys = pack_pair_keys(delta.pair_left, delta.pair_right)
        admitted = self.online.admit(probabilities, delta.pair_positions, keys=keys)
        return BulkInsertResult(
            entity_ids=delta.entity_ids,
            nodes=delta.nodes,
            num_new_pairs=delta.num_new_pairs,
            probabilities=probabilities,
            num_admitted=int(admitted.sum()),
        )

    def remove(self, entity_id: str, side: int = 0) -> RemovalResult:
        """Retract one entity and evict its dead pairs from the online state.

        Raises
        ------
        UnknownEntityError
            When the entity is not currently live on ``side``; neither the
            index nor the online aggregates are touched.
        """
        retraction = self.index.remove_entity(entity_id, side=side)
        self._retract_from_online(retraction)
        return RemovalResult(
            entity_id=retraction.entity_id,
            node=retraction.node,
            num_retracted_pairs=retraction.num_retracted_pairs,
            counterpart_ids=tuple(
                self.index.entity_id(int(node)) for node in retraction.counterparts
            ),
        )

    def update(self, profile: EntityProfile, side: int = 0) -> UpdateResult:
        """Correct a live entity in place: retract it, then re-insert the new
        version (fresh node id, freshly scored pairs).

        Raises
        ------
        UnknownEntityError
            When the entity is not currently live on ``side``.
        """
        removed = self.remove(profile.entity_id, side=side)
        inserted = self.insert(profile, side=side)
        return UpdateResult(removed=removed, inserted=inserted)

    def _retract_from_online(self, retraction: RetractionDelta) -> None:
        positions = retraction.pair_positions
        if positions.size == 0:
            return
        scores = self._insert_probabilities.view()[positions].copy()
        self.online.retract(scores, positions)

    # -- exact finalisation ----------------------------------------------------
    def retained(self) -> SessionResult:
        """The exact answer on the live streamed collection.

        Re-evaluates every live pair against the final incremental
        statistics (one vectorized pass over the maintained CSR and pair
        registry), scores with the frozen model, renumbers the candidates
        into the canonical batch node space and applies the configured batch
        pruning algorithm — reproducing what the batch pipeline retains on
        the same final collection, for every pruning algorithm including
        CEP/CNP/RCNP.
        """
        candidates, matrix = self.features.generate_all()
        probabilities = self.model.score(matrix.values)
        if len(candidates) == 0:
            mask = np.zeros(0, dtype=bool)
        else:
            mask = self.pruning.prune(
                probabilities,
                self.index.canonical_candidates(candidates),
                self.index.snapshot_blocks(),
            )
        retained_ids = tuple(
            self._id_pair(int(i), int(j))
            for i, j in zip(candidates.left[mask], candidates.right[mask])
        )
        return SessionResult(
            candidates=candidates,
            probabilities=probabilities,
            retained_mask=mask,
            retained_ids=retained_ids,
        )

    def _id_pair(self, i: int, j: int) -> Tuple[str, str]:
        """Order a retained pair (first side, second side) when bilateral."""
        if self.index.bilateral and self.index.side_of(i) == 1:
            i, j = j, i
        return (self.index.entity_id(i), self.index.entity_id(j))
