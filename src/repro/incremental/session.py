"""Online matching sessions on top of the incremental block index.

A :class:`MatchingSession` wraps a *frozen* probabilistic classifier taken
from a batch pipeline run (:class:`FrozenModel`) and serves the full dynamic
workload: every ``insert`` registers the entity in a
:class:`MutableBlockIndex`, computes the feature vectors of the candidate
delta with a :class:`DeltaFeatureGenerator`, scores them with the frozen
model, and returns the entity's current matches under an *online* pruning
policy; ``remove`` retracts an entity and evicts its dead pairs from the
online aggregates; ``update`` corrects an entity in place; ``insert_bulk``
loads a batch through the index's one-pass bulk path.

The online policies:

* :class:`OnlineWEP` — the WEP average-probability threshold maintained as a
  running sum/count of valid scores; retractions subtract the dead pairs'
  insert-time scores from the running aggregate;
* :class:`OnlineTopK` — a CEP-style global top-K admission maintained with a
  :class:`repro.utils.pqueue.BoundedTopQueue`; retractions lazily delete the
  dead pairs from the queue.

Streaming answers are necessarily provisional: scores are taken at insert
time, while later mutations keep shifting the block statistics.  The exact
answer is always available through :meth:`MatchingSession.retained`, which
re-evaluates every live pair against the final statistics (reusing the
maintained CSR and pair registry — no re-blocking, no re-extraction),
renumbers the survivors into the canonical batch node space and applies the
configured *batch* pruning algorithm.  Any interleaving of inserts, removals,
updates and bulk loads ending in collection ``C`` therefore reproduces the
batch pipeline's retained pairs on ``C`` — for every pruning algorithm,
including the cardinality-based CEP/CNP/RCNP, whose probability ties are
broken deterministically by packed candidate key on both sides.  The
equivalence tests in ``tests/incremental/`` assert this exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.pruning import SupervisedPruningAlgorithm, get_pruning_algorithm
from ..core.pruning.base import VALIDITY_THRESHOLD
from ..datamodel import CandidateSet, EntityProfile
from ..ml import ProbabilisticClassifier, StandardScaler
from ..utils.pqueue import BoundedTopQueue
from .delta import DeltaFeatureGenerator
from .index import (
    BulkInsertDelta,
    MutableBlockIndex,
    RetractionDelta,
    UnknownEntityError,
    _Growable,
    pack_pair_keys,
)


@dataclass(frozen=True)
class FrozenModel:
    """A trained classifier (plus its scaler) detached from the batch pipeline.

    Parameters
    ----------
    classifier:
        A fitted :class:`ProbabilisticClassifier`.
    scaler:
        The :class:`StandardScaler` the classifier was trained behind, or
        ``None`` when features were not standardised.
    feature_set:
        The weighting-scheme names the classifier expects, in order.
    """

    classifier: ProbabilisticClassifier
    scaler: Optional[StandardScaler]
    feature_set: Tuple[str, ...]

    def score(self, features: np.ndarray) -> np.ndarray:
        """Match probability of every feature row."""
        if features.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        values = self.scaler.transform(features) if self.scaler is not None else features
        return self.classifier.predict_proba(values)

    @classmethod
    def from_batch(cls, result) -> "FrozenModel":
        """Freeze the classifier a batch pipeline run trained.

        ``result`` is a :class:`repro.core.pipeline.MetaBlockingResult`; the
        pipeline records its fitted classifier, scaler and feature set there.
        """
        if result.classifier is None:
            raise ValueError(
                "the batch result carries no classifier; re-run the pipeline "
                "(older results predate frozen-model support)"
            )
        return cls(
            classifier=result.classifier,
            scaler=result.scaler,
            feature_set=tuple(result.feature_set),
        )


class StaleSessionError(RuntimeError):
    """The session's index was compacted underneath it.

    :meth:`MutableBlockIndex.compact` reassigns raw node ids and registry
    positions; the per-position state a live session holds (insert-time
    probabilities, online top-K queue items) becomes silently wrong.  The
    session detects the generation bump and refuses further operations —
    call :meth:`MatchingSession.compact`, which remaps its state, instead of
    ``session.index.compact()``.
    """

    def __init__(self) -> None:
        super().__init__(
            "the session's index was compacted directly (index.compact()): "
            "registry positions held by the online policy and the insert-time "
            "probabilities are stale — compact through MatchingSession.compact(), "
            "which remaps its per-position state"
        )


class OnlinePruningPolicy:
    """Decide, per mutation, which freshly scored pairs currently qualify."""

    name: str = "online"

    def admit(
        self,
        probabilities: np.ndarray,
        positions: np.ndarray,
        keys: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Update the online state with the new scores; return an admit mask.

        ``keys`` are optional packed candidate keys used for deterministic
        tie-breaking by policies that rank pairs.
        """
        raise NotImplementedError

    def retract(self, probabilities: np.ndarray, positions: np.ndarray) -> None:
        """Evict retracted pairs (given their insert-time scores) from the
        online state.  The default is a no-op for stateless policies."""

    # -- durability / compaction hooks -----------------------------------------
    def export_state(self, key_of_position) -> dict:
        """Position-independent state for snapshots.

        ``key_of_position`` maps a live registry position to its canonical
        packed pair key — the identity that survives compaction and
        recovery.  Stateless policies export nothing.
        """
        return {}

    def restore_state(self, state: dict, position_of_key) -> None:
        """Restore :meth:`export_state` output onto a rebuilt index, where
        ``position_of_key`` maps a canonical packed key back to the rebuilt
        registry position."""

    def remap_positions(self, remap: dict) -> None:
        """Rewrite held registry positions after a session-safe compaction.

        ``remap`` maps each old live position to ``(new_position, key)``.
        Policies that hold no positions ignore it.
        """


class OnlineWEP(OnlinePruningPolicy):
    """WEP's average-probability threshold as a running aggregate.

    Keeps the sum and count of all *valid* scores (probability >= 0.5) seen
    so far; a new pair is admitted when its score is valid and reaches the
    current running average — the streaming analogue of Algorithm 1.
    Retracting a pair removes its insert-time score from the running
    aggregate, so deleted entities stop weighing on the threshold.
    """

    name = "wep"

    def __init__(self) -> None:
        self._valid_sum = 0.0
        self._valid_count = 0

    @property
    def threshold(self) -> float:
        """The current admission threshold (running average of valid scores)."""
        if self._valid_count == 0:
            return VALIDITY_THRESHOLD
        return self._valid_sum / self._valid_count

    def admit(
        self,
        probabilities: np.ndarray,
        positions: np.ndarray,
        keys: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        valid = probabilities >= VALIDITY_THRESHOLD
        self._valid_sum += float(probabilities[valid].sum())
        self._valid_count += int(valid.sum())
        return valid & (probabilities >= self.threshold)

    def retract(self, probabilities: np.ndarray, positions: np.ndarray) -> None:
        valid = probabilities >= VALIDITY_THRESHOLD
        self._valid_sum -= float(probabilities[valid].sum())
        self._valid_count -= int(valid.sum())
        if self._valid_count <= 0:
            # reset exactly; repeated add/subtract cycles must not leave
            # float residue behind an empty aggregate
            self._valid_sum = 0.0
            self._valid_count = 0

    def export_state(self, key_of_position) -> dict:
        return {"valid_sum": self._valid_sum, "valid_count": self._valid_count}

    def restore_state(self, state: dict, position_of_key) -> None:
        self._valid_sum = float(state["valid_sum"])
        self._valid_count = int(state["valid_count"])


class OnlineTopK(OnlinePruningPolicy):
    """CEP-style global top-K admission over a bounded priority queue.

    Parameters
    ----------
    capacity:
        The retention budget K.  The queue's minimum retained weight is the
        admission threshold, exactly as in Algorithm 4; evicted pairs simply
        stop being reported (earlier answers are provisional by design).
        Retracted pairs are lazily deleted from the queue, freeing their
        budget slots immediately.
    """

    name = "topk"

    def __init__(self, capacity: int) -> None:
        self._queue: BoundedTopQueue[int] = BoundedTopQueue(capacity)

    @property
    def threshold(self) -> float:
        """The current admission threshold (minimum retained weight)."""
        return max(self._queue.min_weight, VALIDITY_THRESHOLD)

    def admit(
        self,
        probabilities: np.ndarray,
        positions: np.ndarray,
        keys: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        mask = np.zeros(probabilities.size, dtype=bool)
        key_list = keys.tolist() if keys is not None else [None] * probabilities.size
        for offset, (probability, position, key) in enumerate(
            zip(probabilities.tolist(), positions.tolist(), key_list)
        ):
            if probability < VALIDITY_THRESHOLD:
                continue
            evicted = self._queue.push(
                probability, int(position), key=None if key is None else int(key)
            )
            mask[offset] = evicted != int(position)
        return mask

    def retract(self, probabilities: np.ndarray, positions: np.ndarray) -> None:
        for position in positions.tolist():
            self._queue.discard(int(position))

    def export_state(self, key_of_position) -> dict:
        """The retained (weight, canonical key) pairs, strongest first.

        The retained set of a :class:`BoundedTopQueue` is a pure function of
        the (weight, key) multiset, so serializing by canonical key makes
        the state independent of insertion order and registry positions.
        """
        return {
            "items": [
                (float(weight), int(key_of_position(int(position))))
                for weight, position in self._queue.weighted_items()
            ]
        }

    def restore_state(self, state: dict, position_of_key) -> None:
        queue: BoundedTopQueue[int] = BoundedTopQueue(self._queue.capacity)
        for weight, key in state["items"]:
            queue.push(float(weight), int(position_of_key(int(key))), key=int(key))
        self._queue = queue

    def remap_positions(self, remap: dict) -> None:
        queue: BoundedTopQueue[int] = BoundedTopQueue(self._queue.capacity)
        for weight, position in self._queue.weighted_items():
            new_position, key = remap[int(position)]
            queue.push(float(weight), int(new_position), key=int(key))
        self._queue = queue


def _resolve_online_policy(
    online: Union[str, OnlinePruningPolicy, None], top_k: int
) -> OnlinePruningPolicy:
    if isinstance(online, OnlinePruningPolicy):
        return online
    if online is None or online == "wep":
        return OnlineWEP()
    if online == "topk":
        return OnlineTopK(top_k)
    raise ValueError(f"unknown online policy {online!r}; expected 'wep' or 'topk'")


@dataclass(frozen=True)
class InsertResult:
    """The outcome of one streaming insert."""

    #: the inserted entity's identifier
    entity_id: str
    #: node id assigned by the session's index
    node: int
    #: number of candidate pairs the insert introduced
    num_new_pairs: int
    #: match probability of every new pair (aligned with ``counterpart_ids``)
    probabilities: np.ndarray
    #: entity ids of the new candidate counterparts
    counterpart_ids: Tuple[str, ...]
    #: (counterpart id, probability) of the pairs the online policy admitted,
    #: ordered by decreasing probability
    matches: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class RemovalResult:
    """The outcome of one streaming removal."""

    #: the removed entity's identifier
    entity_id: str
    #: node id the entity held (never reused)
    node: int
    #: number of candidate pairs the removal retracted
    num_retracted_pairs: int
    #: entity ids of the retracted counterparts
    counterpart_ids: Tuple[str, ...]


@dataclass(frozen=True)
class UpdateResult:
    """The outcome of one streaming in-place correction."""

    #: the retraction of the old version
    removed: RemovalResult
    #: the insert of the new version (fresh node id, freshly scored pairs)
    inserted: InsertResult


@dataclass(frozen=True)
class BulkInsertResult:
    """The outcome of one bulk load."""

    #: the inserted entities' identifiers, in input order
    entity_ids: Tuple[str, ...]
    #: node ids assigned by the session's index, in input order
    nodes: np.ndarray
    #: number of candidate pairs the batch introduced
    num_new_pairs: int
    #: match probability of every new pair (registry order)
    probabilities: np.ndarray
    #: number of new pairs the online policy admitted
    num_admitted: int


@dataclass
class SessionResult:
    """The exact (batch-equivalent) answer over all live streamed entities."""

    #: every live candidate pair
    candidates: CandidateSet
    #: match probability of every pair under the final statistics
    probabilities: np.ndarray
    #: boolean mask over ``candidates`` (True = retained)
    retained_mask: np.ndarray
    #: retained pairs as entity-id tuples, ordered (first side, second side)
    #: for bilateral sessions and by insertion order for unilateral ones
    retained_ids: Tuple[Tuple[str, str], ...]

    @property
    def retained_count(self) -> int:
        """Number of retained candidate pairs."""
        return int(self.retained_mask.sum())

    def retained_id_set(self) -> set:
        """The retained pairs as a set of entity-id tuples."""
        return set(self.retained_ids)


class MatchingSession:
    """Serve entity inserts, removals and updates against a frozen
    batch-trained matcher.

    Parameters
    ----------
    model:
        The frozen classifier + scaler + feature set (see
        :meth:`FrozenModel.from_batch`).
    bilateral:
        ``True`` for Clean-Clean streams (two sources, cross-source pairs),
        ``False`` for Dirty streams.
    blocking:
        Signature extractor for the underlying index (default token
        blocking).
    pruning:
        The *batch* pruning algorithm name or instance applied by
        :meth:`retained` (default BLAST, the paper's best weight-based
        algorithm).  All algorithms — weight- and cardinality-based — are
        exactly batch-equivalent.
    online:
        The per-insert online policy: ``"wep"`` (default), ``"topk"``, or an
        :class:`OnlinePruningPolicy` instance.
    top_k:
        Budget for the ``"topk"`` policy.
    wal_path:
        Optional directory for a write-ahead log.  Every mutation is
        journaled before it is applied and a full session snapshot (frozen
        model, online-policy state, insert-time probabilities) is written on
        construction and every ``snapshot_every`` mutations, so a crashed
        session resumes with :meth:`MatchingSession.recover` at identical
        thresholds.  The directory must be empty — recovering into an
        existing log goes through :meth:`recover`.
    snapshot_every:
        Mutations between automatic checkpoints (``None`` = only explicit
        :meth:`checkpoint` calls).
    wal_sync:
        ``"always"`` (fsync per record, the durability default) or
        ``"batch"`` (fsync on checkpoint/close only).
    """

    def __init__(
        self,
        model: FrozenModel,
        bilateral: bool = False,
        blocking=None,
        pruning: Union[str, SupervisedPruningAlgorithm] = "BLAST",
        online: Union[str, OnlinePruningPolicy, None] = "wep",
        top_k: int = 1000,
        wal_path=None,
        snapshot_every: Optional[int] = None,
        wal_sync: str = "always",
    ) -> None:
        self.model = model
        self.index = MutableBlockIndex(blocking=blocking, bilateral=bilateral)
        self.features = DeltaFeatureGenerator(self.index, model.feature_set)
        self.pruning = (
            get_pruning_algorithm(pruning) if isinstance(pruning, str) else pruning
        )
        self.online = _resolve_online_policy(online, top_k)
        #: probability of every registry position at the time it was inserted
        #: (provisional; retracted positions keep their last score)
        self._insert_probabilities = _Growable(np.float64, capacity=1024)
        self._top_k = top_k
        self._generation = self.index.generation
        self._snapshot_every = snapshot_every
        self._ops_since_snapshot = 0
        self.wal = None
        if wal_path is not None:
            from ..persistence.log import WriteAheadLog

            wal = WriteAheadLog(wal_path, sync=wal_sync)
            if not wal.is_empty():
                raise ValueError(
                    f"WAL directory {wal.path} already holds a log or snapshots; "
                    "resume it with MatchingSession.recover() instead of "
                    "opening a fresh session over it"
                )
            self.index.attach_wal(wal)
            self.wal = wal
            # an immediate checkpoint persists the frozen model, so recovery
            # always finds a session snapshot to restore thresholds from
            self.checkpoint()

    # -- introspection ---------------------------------------------------------
    @property
    def num_entities(self) -> int:
        """Number of live streamed entities."""
        return self.index.num_entities

    @property
    def num_pairs(self) -> int:
        """Number of live distinct candidate pairs."""
        return self.index.num_pairs

    def insert_time_probabilities(self) -> np.ndarray:
        """The provisional score every registry position received at insert
        time (including positions whose pairs were since retracted)."""
        return self._insert_probabilities.view().copy()

    # -- streaming -------------------------------------------------------------
    def _check_generation(self) -> None:
        if self._generation != self.index.generation:
            raise StaleSessionError()

    def _count_op(self) -> None:
        if self.wal is None or self._snapshot_every is None:
            return
        self._ops_since_snapshot += 1
        if self._ops_since_snapshot >= self._snapshot_every:
            self.checkpoint()

    def insert(self, profile: EntityProfile, side: int = 0) -> InsertResult:
        """Insert one entity; return its scored + online-pruned matches."""
        self._check_generation()
        delta = self.index.add_entity(profile, side=side)
        result = self._score_insert(delta)
        self._count_op()
        return result

    def _score_insert(self, delta) -> InsertResult:
        """Score one insert delta and fold it into the online state."""
        matrix = self.features.generate_delta(delta)
        probabilities = self.model.score(matrix.values)
        self._insert_probabilities.extend(probabilities)
        keys = pack_pair_keys(
            delta.counterparts, np.full(delta.counterparts.size, delta.node)
        )
        admitted = self.online.admit(probabilities, delta.pair_positions, keys=keys)

        counterpart_ids = tuple(
            self.index.entity_id(int(node)) for node in delta.counterparts
        )
        order = np.argsort(-probabilities[admitted], kind="stable")
        admitted_offsets = np.flatnonzero(admitted)[order]
        matches = tuple(
            (counterpart_ids[int(offset)], float(probabilities[int(offset)]))
            for offset in admitted_offsets
        )
        return InsertResult(
            entity_id=delta.entity_id,
            node=delta.node,
            num_new_pairs=delta.num_new_pairs,
            probabilities=probabilities,
            counterpart_ids=counterpart_ids,
            matches=matches,
        )

    def insert_many(
        self, profiles: Iterable[EntityProfile], side: int = 0
    ) -> List[InsertResult]:
        """Insert several entities from the same side, one at a time."""
        return [self.insert(profile, side=side) for profile in profiles]

    def insert_bulk(
        self,
        profiles: Sequence[EntityProfile],
        side: int = 0,
        signature_lists=None,
    ) -> BulkInsertResult:
        """Load a batch of same-side entities through the index's bulk path.

        The whole batch is tokenized, merged into the live CSR and scored in
        one pass.  The *index state* (and therefore :meth:`retained`) ends
        up identical to one-at-a-time inserts; the *provisional* online
        admissions may differ, because the policy sees the batch's scores
        together — OnlineWEP folds them all into its running average before
        thresholding any of them, where sequential inserts would threshold
        each pair against the average as of its own arrival.

        ``signature_lists`` optionally carries pre-extracted per-profile
        signatures (callers that fanned tokenization out over a
        :class:`repro.parallel.ParallelExecutor`, as the serving daemon
        does, skip the in-process pass).
        """
        self._check_generation()
        delta = self.index.add_entities_bulk(
            profiles, side=side, signature_lists=signature_lists
        )
        result = self._score_bulk(delta)
        self._count_op()
        return result

    def _score_bulk(self, delta) -> BulkInsertResult:
        """Score one bulk delta and fold it into the online state."""
        candidates = self.index.bulk_candidate_set(delta)
        matrix = self.features.generate(candidates)
        probabilities = self.model.score(matrix.values)
        self._insert_probabilities.extend(probabilities)
        keys = pack_pair_keys(delta.pair_left, delta.pair_right)
        admitted = self.online.admit(probabilities, delta.pair_positions, keys=keys)
        return BulkInsertResult(
            entity_ids=delta.entity_ids,
            nodes=delta.nodes,
            num_new_pairs=delta.num_new_pairs,
            probabilities=probabilities,
            num_admitted=int(admitted.sum()),
        )

    def remove(self, entity_id: str, side: int = 0) -> RemovalResult:
        """Retract one entity and evict its dead pairs from the online state.

        Raises
        ------
        UnknownEntityError
            When the entity is not currently live on ``side``; neither the
            index nor the online aggregates are touched.
        """
        self._check_generation()
        retraction = self.index.remove_entity(entity_id, side=side)
        self._retract_from_online(retraction)
        result = RemovalResult(
            entity_id=retraction.entity_id,
            node=retraction.node,
            num_retracted_pairs=retraction.num_retracted_pairs,
            counterpart_ids=tuple(
                self.index.entity_id(int(node)) for node in retraction.counterparts
            ),
        )
        self._count_op()
        return result

    def update(self, profile: EntityProfile, side: int = 0) -> UpdateResult:
        """Correct a live entity in place: retract it, then re-insert the new
        version (fresh node id, freshly scored pairs).

        Raises
        ------
        UnknownEntityError
            When the entity is not currently live on ``side``.
        """
        removed = self.remove(profile.entity_id, side=side)
        inserted = self.insert(profile, side=side)
        return UpdateResult(removed=removed, inserted=inserted)

    def _retract_from_online(self, retraction: RetractionDelta) -> None:
        positions = retraction.pair_positions
        if positions.size == 0:
            return
        scores = self._insert_probabilities.view()[positions].copy()
        self.online.retract(scores, positions)

    # -- durability ------------------------------------------------------------
    def checkpoint(self):
        """Write a full session snapshot into the WAL directory.

        The snapshot embeds the current log offset; recovery loads it and
        replays only the records behind it.  Returns the snapshot path.
        """
        if self.wal is None:
            raise RuntimeError(
                "the session has no write-ahead log; construct it with wal_path="
            )
        self._check_generation()
        from ..persistence.snapshot import session_snapshot_state

        path = self.wal.write_snapshot(session_snapshot_state(self))
        self._ops_since_snapshot = 0
        return path

    def close(self) -> None:
        """Fsync and close the session's log, if any."""
        if self.wal is not None:
            self.wal.close()

    @classmethod
    def recover(cls, path, sync: str = "always") -> "MatchingSession":
        """Resume a WAL-backed session after a crash.

        Loads the newest session snapshot, rebuilds the index, restores the
        online policy's thresholds and the insert-time probabilities, replays
        the surviving log tail through the frozen model, truncates any torn
        tail record and resumes journaling — the recovered session's exact
        answer (:meth:`retained`) and admission thresholds equal the
        uninterrupted run's at the last durable record.
        """
        from ..persistence.recovery import recover_session

        return recover_session(path, sync=sync)

    @classmethod
    def _from_parts(
        cls,
        model: FrozenModel,
        index: MutableBlockIndex,
        pruning,
        online: OnlinePruningPolicy,
        top_k: int,
        snapshot_every: Optional[int],
    ) -> "MatchingSession":
        """Assemble a session around an already-built index (recovery path)."""
        session = cls.__new__(cls)
        session.model = model
        session.index = index
        session.features = DeltaFeatureGenerator(index, model.feature_set)
        session.pruning = pruning
        session.online = online
        session._insert_probabilities = _Growable(np.float64, capacity=1024)
        session._top_k = top_k
        session._generation = index.generation
        session._snapshot_every = snapshot_every
        session._ops_since_snapshot = 0
        session.wal = None
        return session

    def _replay_record(self, record: dict) -> None:
        """Re-apply one logged mutation through the scoring path.

        Replay feeds the record's stored signatures to the index's
        ``_apply_*`` entry points (no re-tokenization) and re-scores the
        resulting deltas with the frozen model — deterministic, so the
        replayed online state matches the original run's.
        """
        op = record["op"]
        if op == "meta":
            return
        if op == "add":
            self._score_insert(
                self.index._apply_insert(record["id"], record["side"], record["sig"])
            )
        elif op == "bulk":
            self._score_bulk(
                self.index._apply_bulk(
                    [(entity_id, signatures) for entity_id, signatures in record["entities"]],
                    record["side"],
                )
            )
        elif op == "remove":
            retraction = self.index.remove_entity(record["id"], side=record["side"])
            self._retract_from_online(retraction)
        elif op == "update":
            retraction = self.index.remove_entity(record["id"], side=record["side"])
            self._retract_from_online(retraction)
            self._score_insert(
                self.index._apply_insert(record["id"], record["side"], record["sig"])
            )
        else:
            raise ValueError(f"unknown WAL record op {op!r}")

    # -- compaction ------------------------------------------------------------
    def compact(self) -> None:
        """Compact the index *and* remap the session's per-position state.

        :meth:`MutableBlockIndex.compact` reassigns registry positions; this
        wrapper snapshots the live positions' canonical pair keys first,
        compacts, then rewrites the insert-time probabilities and the online
        policy's held positions onto the rebuilt registry (sorted by packed
        key — exactly the rebuilt order).  Thresholds are unchanged: the
        online state is the same multiset of (weight, pair) under new
        positions.
        """
        self._check_generation()
        from ..persistence.snapshot import canonical_pair_keys

        index = self.index
        positions, keys = canonical_pair_keys(index)
        probabilities = self._insert_probabilities.view()[positions].copy()
        order = np.argsort(keys)
        index.compact()
        sorted_keys = keys[order]
        if index.num_registered_pairs != positions.size or not np.array_equal(
            index._pair_keys.view(), sorted_keys
        ):
            raise RuntimeError(
                "compaction did not rebuild the expected pair registry; the "
                "session state cannot be remapped"
            )
        self._insert_probabilities = _Growable(np.float64, capacity=1024)
        self._insert_probabilities.extend(probabilities[order])
        remap = {
            int(old): (int(new), int(key))
            for new, (old, key) in enumerate(
                zip(positions[order].tolist(), sorted_keys.tolist())
            )
        }
        self.online.remap_positions(remap)
        self._generation = index.generation

    # -- exact finalisation ----------------------------------------------------
    def retained(self) -> SessionResult:
        """The exact answer on the live streamed collection.

        Re-evaluates every live pair against the final incremental
        statistics (one vectorized pass over the maintained CSR and pair
        registry), scores with the frozen model, renumbers the candidates
        into the canonical batch node space and applies the configured batch
        pruning algorithm — reproducing what the batch pipeline retains on
        the same final collection, for every pruning algorithm including
        CEP/CNP/RCNP.
        """
        self._check_generation()
        candidates, matrix = self.features.generate_all()
        probabilities = self.model.score(matrix.values)
        if len(candidates) == 0:
            mask = np.zeros(0, dtype=bool)
        else:
            mask = self.pruning.prune(
                probabilities,
                self.index.canonical_candidates(candidates),
                self.index.snapshot_blocks(),
            )
        retained_ids = tuple(
            self._id_pair(int(i), int(j))
            for i, j in zip(candidates.left[mask], candidates.right[mask])
        )
        return SessionResult(
            candidates=candidates,
            probabilities=probabilities,
            retained_mask=mask,
            retained_ids=retained_ids,
        )

    def _id_pair(self, i: int, j: int) -> Tuple[str, str]:
        """Order a retained pair (first side, second side) when bilateral."""
        if self.index.bilateral and self.index.side_of(i) == 1:
            i, j = j, i
        return (self.index.entity_id(i), self.index.entity_id(j))
