"""Online matching sessions on top of the incremental block index.

A :class:`MatchingSession` wraps a *frozen* probabilistic classifier taken
from a batch pipeline run (:class:`FrozenModel`) and serves inserts: every
``insert`` registers the entity in a :class:`MutableBlockIndex`, computes the
feature vectors of the candidate delta with a :class:`DeltaFeatureGenerator`,
scores them with the frozen model, and returns the entity's current matches
under an *online* pruning policy:

* :class:`OnlineWEP` — the WEP average-probability threshold maintained as a
  running sum/count of valid scores;
* :class:`OnlineTopK` — a CEP-style global top-K admission maintained with a
  :class:`repro.utils.pqueue.BoundedTopQueue`.

Streaming answers are necessarily provisional: scores are taken at insert
time, while later inserts keep shifting the block statistics.  The exact
answer is always available through :meth:`MatchingSession.retained`, which
re-evaluates every registered pair against the final statistics (reusing the
maintained CSR and pair registry — no re-blocking, no re-extraction) and
applies the configured *batch* pruning algorithm.  Feeding a session the full
collection one entity at a time therefore reproduces the batch pipeline's
retained pairs on the final collection; the equivalence tests in
``tests/incremental/`` assert this exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from ..core.pruning import SupervisedPruningAlgorithm, get_pruning_algorithm
from ..core.pruning.base import VALIDITY_THRESHOLD
from ..datamodel import CandidateSet, EntityProfile
from ..ml import ProbabilisticClassifier, StandardScaler
from ..utils.pqueue import BoundedTopQueue
from .delta import DeltaFeatureGenerator
from .index import MutableBlockIndex, _Growable


@dataclass(frozen=True)
class FrozenModel:
    """A trained classifier (plus its scaler) detached from the batch pipeline.

    Parameters
    ----------
    classifier:
        A fitted :class:`ProbabilisticClassifier`.
    scaler:
        The :class:`StandardScaler` the classifier was trained behind, or
        ``None`` when features were not standardised.
    feature_set:
        The weighting-scheme names the classifier expects, in order.
    """

    classifier: ProbabilisticClassifier
    scaler: Optional[StandardScaler]
    feature_set: Tuple[str, ...]

    def score(self, features: np.ndarray) -> np.ndarray:
        """Match probability of every feature row."""
        if features.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        values = self.scaler.transform(features) if self.scaler is not None else features
        return self.classifier.predict_proba(values)

    @classmethod
    def from_batch(cls, result) -> "FrozenModel":
        """Freeze the classifier a batch pipeline run trained.

        ``result`` is a :class:`repro.core.pipeline.MetaBlockingResult`; the
        pipeline records its fitted classifier, scaler and feature set there.
        """
        if result.classifier is None:
            raise ValueError(
                "the batch result carries no classifier; re-run the pipeline "
                "(older results predate frozen-model support)"
            )
        return cls(
            classifier=result.classifier,
            scaler=result.scaler,
            feature_set=tuple(result.feature_set),
        )


class OnlinePruningPolicy:
    """Decide, per insert, which freshly scored pairs currently qualify."""

    name: str = "online"

    def admit(self, probabilities: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Update the online state with the new scores; return an admit mask."""
        raise NotImplementedError


class OnlineWEP(OnlinePruningPolicy):
    """WEP's average-probability threshold as a running aggregate.

    Keeps the sum and count of all *valid* scores (probability >= 0.5) seen
    so far; a new pair is admitted when its score is valid and reaches the
    current running average — the streaming analogue of Algorithm 1.
    """

    name = "wep"

    def __init__(self) -> None:
        self._valid_sum = 0.0
        self._valid_count = 0

    @property
    def threshold(self) -> float:
        """The current admission threshold (running average of valid scores)."""
        if self._valid_count == 0:
            return VALIDITY_THRESHOLD
        return self._valid_sum / self._valid_count

    def admit(self, probabilities: np.ndarray, positions: np.ndarray) -> np.ndarray:
        valid = probabilities >= VALIDITY_THRESHOLD
        self._valid_sum += float(probabilities[valid].sum())
        self._valid_count += int(valid.sum())
        return valid & (probabilities >= self.threshold)


class OnlineTopK(OnlinePruningPolicy):
    """CEP-style global top-K admission over a bounded priority queue.

    Parameters
    ----------
    capacity:
        The retention budget K.  The queue's minimum retained weight is the
        admission threshold, exactly as in Algorithm 4; evicted pairs simply
        stop being reported (earlier answers are provisional by design).
    """

    name = "topk"

    def __init__(self, capacity: int) -> None:
        self._queue: BoundedTopQueue[int] = BoundedTopQueue(capacity)

    @property
    def threshold(self) -> float:
        """The current admission threshold (minimum retained weight)."""
        return max(self._queue.min_weight, VALIDITY_THRESHOLD)

    def admit(self, probabilities: np.ndarray, positions: np.ndarray) -> np.ndarray:
        mask = np.zeros(probabilities.size, dtype=bool)
        for offset, (probability, position) in enumerate(
            zip(probabilities.tolist(), positions.tolist())
        ):
            if probability < VALIDITY_THRESHOLD:
                continue
            evicted = self._queue.push(probability, int(position))
            mask[offset] = evicted != int(position)
        return mask


def _resolve_online_policy(
    online: Union[str, OnlinePruningPolicy, None], top_k: int
) -> OnlinePruningPolicy:
    if isinstance(online, OnlinePruningPolicy):
        return online
    if online is None or online == "wep":
        return OnlineWEP()
    if online == "topk":
        return OnlineTopK(top_k)
    raise ValueError(f"unknown online policy {online!r}; expected 'wep' or 'topk'")


@dataclass(frozen=True)
class InsertResult:
    """The outcome of one streaming insert."""

    #: the inserted entity's identifier
    entity_id: str
    #: node id assigned by the session's index
    node: int
    #: number of candidate pairs the insert introduced
    num_new_pairs: int
    #: match probability of every new pair (aligned with ``counterpart_ids``)
    probabilities: np.ndarray
    #: entity ids of the new candidate counterparts
    counterpart_ids: Tuple[str, ...]
    #: (counterpart id, probability) of the pairs the online policy admitted,
    #: ordered by decreasing probability
    matches: Tuple[Tuple[str, float], ...]


@dataclass
class SessionResult:
    """The exact (batch-equivalent) answer over all streamed entities."""

    #: every registered candidate pair
    candidates: CandidateSet
    #: match probability of every pair under the final statistics
    probabilities: np.ndarray
    #: boolean mask over ``candidates`` (True = retained)
    retained_mask: np.ndarray
    #: retained pairs as entity-id tuples, ordered (first side, second side)
    #: for bilateral sessions and by insertion order for unilateral ones
    retained_ids: Tuple[Tuple[str, str], ...]

    @property
    def retained_count(self) -> int:
        """Number of retained candidate pairs."""
        return int(self.retained_mask.sum())

    def retained_id_set(self) -> set:
        """The retained pairs as a set of entity-id tuples."""
        return set(self.retained_ids)


class MatchingSession:
    """Serve entity inserts against a frozen batch-trained matcher.

    Parameters
    ----------
    model:
        The frozen classifier + scaler + feature set (see
        :meth:`FrozenModel.from_batch`).
    bilateral:
        ``True`` for Clean-Clean streams (two sources, cross-source pairs),
        ``False`` for Dirty streams.
    blocking:
        Signature extractor for the underlying index (default token
        blocking).
    pruning:
        The *batch* pruning algorithm name or instance applied by
        :meth:`retained` (default BLAST, the paper's best weight-based
        algorithm).
    online:
        The per-insert online policy: ``"wep"`` (default), ``"topk"``, or an
        :class:`OnlinePruningPolicy` instance.
    top_k:
        Budget for the ``"topk"`` policy.
    """

    def __init__(
        self,
        model: FrozenModel,
        bilateral: bool = False,
        blocking=None,
        pruning: Union[str, SupervisedPruningAlgorithm] = "BLAST",
        online: Union[str, OnlinePruningPolicy, None] = "wep",
        top_k: int = 1000,
    ) -> None:
        self.model = model
        self.index = MutableBlockIndex(blocking=blocking, bilateral=bilateral)
        self.features = DeltaFeatureGenerator(self.index, model.feature_set)
        self.pruning = (
            get_pruning_algorithm(pruning) if isinstance(pruning, str) else pruning
        )
        self.online = _resolve_online_policy(online, top_k)
        #: probability of every pair at the time it was inserted (provisional)
        self._insert_probabilities = _Growable(np.float64, capacity=1024)

    # -- introspection ---------------------------------------------------------
    @property
    def num_entities(self) -> int:
        """Number of streamed entities."""
        return self.index.num_entities

    @property
    def num_pairs(self) -> int:
        """Number of distinct candidate pairs registered so far."""
        return self.index.num_pairs

    def insert_time_probabilities(self) -> np.ndarray:
        """The provisional score every pair received when it was inserted."""
        return self._insert_probabilities.view().copy()

    # -- streaming -------------------------------------------------------------
    def insert(self, profile: EntityProfile, side: int = 0) -> InsertResult:
        """Insert one entity; return its scored + online-pruned matches."""
        delta = self.index.add_entity(profile, side=side)
        matrix = self.features.generate_delta(delta)
        probabilities = self.model.score(matrix.values)
        self._insert_probabilities.extend(probabilities)
        admitted = self.online.admit(probabilities, delta.pair_positions)

        counterpart_ids = tuple(
            self.index.entity_id(int(node)) for node in delta.counterparts
        )
        order = np.argsort(-probabilities[admitted], kind="stable")
        admitted_offsets = np.flatnonzero(admitted)[order]
        matches = tuple(
            (counterpart_ids[int(offset)], float(probabilities[int(offset)]))
            for offset in admitted_offsets
        )
        return InsertResult(
            entity_id=delta.entity_id,
            node=delta.node,
            num_new_pairs=delta.num_new_pairs,
            probabilities=probabilities,
            counterpart_ids=counterpart_ids,
            matches=matches,
        )

    def insert_many(
        self, profiles: Iterable[EntityProfile], side: int = 0
    ) -> List[InsertResult]:
        """Insert several entities from the same side, one at a time."""
        return [self.insert(profile, side=side) for profile in profiles]

    # -- exact finalisation ----------------------------------------------------
    def retained(self) -> SessionResult:
        """The exact answer on the streamed collection.

        Re-evaluates every registered pair against the final incremental
        statistics (one vectorized pass over the maintained CSR and pair
        registry), scores with the frozen model and applies the configured
        batch pruning algorithm — reproducing what the batch pipeline
        retains on the same final collection.
        """
        candidates, matrix = self.features.generate_all()
        probabilities = self.model.score(matrix.values)
        if len(candidates) == 0:
            mask = np.zeros(0, dtype=bool)
        else:
            mask = self.pruning.prune(
                probabilities, candidates, self.index.snapshot_blocks()
            )
        retained_ids = tuple(
            self._id_pair(int(i), int(j))
            for i, j in zip(candidates.left[mask], candidates.right[mask])
        )
        return SessionResult(
            candidates=candidates,
            probabilities=probabilities,
            retained_mask=mask,
            retained_ids=retained_ids,
        )

    def _id_pair(self, i: int, j: int) -> Tuple[str, str]:
        """Order a retained pair (first side, second side) when bilateral."""
        if self.index.bilateral and self.index.side_of(i) == 1:
            i, j = j, i
        return (self.index.entity_id(i), self.index.entity_id(j))
