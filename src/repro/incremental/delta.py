"""Delta feature generation for streaming inserts.

The weighting schemes (paper Section 4) are pure functions of block
co-occurrence statistics.  :class:`DeltaFeatureGenerator` evaluates them over
an arbitrary subset of candidate pairs — typically the delta introduced by
one insert — against the *current* state of a :class:`MutableBlockIndex`,
reusing the vectorized (``sparse``) scheme implementations and the sorted-key
intersection kernel of :func:`repro.weights.sparse.compute_pair_cooccurrence`
unchanged: the index's :class:`IncrementalStatistics` view duck-types the
:class:`repro.weights.BlockStatistics` surface those implementations consume.

Evaluating the delta of one insert costs work proportional to the block
memberships of the entities involved in the delta, not to the collection.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..core.features import FeatureMatrix, FeatureVectorGenerator
from ..datamodel import CandidateSet
from ..weights import BLAST_FEATURE_SET
from .index import InsertDelta, MutableBlockIndex


class DeltaFeatureGenerator:
    """Generate feature vectors against a live :class:`MutableBlockIndex`.

    Parameters
    ----------
    index:
        The mutable block index the statistics are read from.
    feature_set:
        Weighting-scheme names forming the feature vector (default: the
        BLAST-optimal Formula 1 set).
    """

    def __init__(
        self,
        index: MutableBlockIndex,
        feature_set: Sequence[str] = BLAST_FEATURE_SET,
    ) -> None:
        self.index = index
        self._generator = FeatureVectorGenerator(feature_set, backend="sparse")

    @property
    def feature_set(self) -> Tuple[str, ...]:
        """The configured weighting-scheme names."""
        return self._generator.feature_set

    @property
    def columns(self) -> Tuple[str, ...]:
        """Column labels of the matrices this generator produces."""
        return self._generator.columns

    def generate(self, candidates: CandidateSet) -> FeatureMatrix:
        """Feature matrix of ``candidates`` at the index's current state.

        A fresh statistics view is taken per call, so the matrix always
        reflects the block collection as of the latest insert.
        """
        matrix = self._generator.generate(candidates, self.index.statistics())
        self._orient_entity_columns(matrix, candidates)
        return matrix

    def _orient_entity_columns(
        self, matrix: FeatureMatrix, candidates: CandidateSet
    ) -> None:
        """Align per-side feature columns with the batch orientation.

        Batch candidate pairs are canonical by node id, which in a batch
        index space puts the first-collection entity on the left — so entity
        -level schemes (LCP) emit their ``e_i`` column for the first side.
        Streaming node ids follow arrival order, so a pair's left entity may
        belong to the second collection; swap those rows of every width-2
        scheme to keep the feature layout the frozen classifier was trained
        on.
        """
        if not self.index.bilateral or len(candidates) == 0:
            return
        swap = self.index.sides()[candidates.left] == 1
        if not np.any(swap):
            return
        column = 0
        for scheme in self._generator.schemes:
            if scheme.width == 2:
                matrix.values[np.ix_(swap, [column, column + 1])] = matrix.values[
                    np.ix_(swap, [column + 1, column])
                ]
            column += scheme.width

    def generate_delta(self, delta: InsertDelta) -> FeatureMatrix:
        """Feature matrix of the pairs introduced by one insert."""
        return self.generate(self.index.delta_candidate_set(delta))

    def generate_all(self) -> Tuple[CandidateSet, FeatureMatrix]:
        """Features of every *live* pair (used by exact finalisation).

        Pairs retracted by entity removals are tombstoned in the index's
        registry and excluded here.
        """
        candidates = self.index.candidate_set()
        return candidates, self.generate(candidates)
