"""Incremental streaming meta-blocking.

The batch pipeline (:mod:`repro.core`) recomputes blocking, feature
generation, scoring and pruning from scratch on every run.  This subsystem
provides the streaming execution mode: entities are inserted one at a time,
each insert costs work proportional to its candidate delta, and a frozen
batch-trained classifier serves online match decisions.

* :class:`MutableBlockIndex` — the incrementally maintained token/block
  inverted index and entity x block CSR incidence structure, fully dynamic:
  per-entity inserts, removals (:meth:`MutableBlockIndex.remove_entity`),
  in-place updates and one-pass bulk loads
  (:meth:`MutableBlockIndex.add_entities_bulk`);
* :class:`DeltaFeatureGenerator` — weighting-scheme feature vectors for the
  candidate delta of an insert, reusing the sparse backend's kernels;
* :class:`MatchingSession` — the online facade: frozen classifier, per-insert
  scored matches under running WEP/top-K thresholds (both retraction-aware),
  and an exact batch-equivalent :meth:`MatchingSession.retained`
  finalisation covering *every* pruning algorithm, cardinality-based ones
  included.
"""

from .delta import DeltaFeatureGenerator
from .index import (
    BulkInsertDelta,
    DuplicateEntityError,
    IncrementalStatistics,
    InsertDelta,
    MutableBlockIndex,
    RetractionDelta,
    UnknownEntityError,
    UpdateDelta,
)
from .sharded import ShardedMutableBlockIndex, ShardedStatistics
from .session import (
    BulkInsertResult,
    FrozenModel,
    InsertResult,
    MatchingSession,
    OnlinePruningPolicy,
    OnlineTopK,
    OnlineWEP,
    RemovalResult,
    SessionResult,
    StaleSessionError,
    UpdateResult,
)
from .stream import (
    StreamReplay,
    StreamTrainingError,
    evaluate_retained_ids,
    ground_truth_id_pairs,
    interleave_profiles,
    live_truth_id_pairs,
    replay_stream,
    split_bootstrap,
    train_frozen_model,
)

__all__ = [
    "BulkInsertDelta",
    "BulkInsertResult",
    "DeltaFeatureGenerator",
    "DuplicateEntityError",
    "FrozenModel",
    "IncrementalStatistics",
    "InsertDelta",
    "InsertResult",
    "MatchingSession",
    "MutableBlockIndex",
    "OnlinePruningPolicy",
    "OnlineTopK",
    "OnlineWEP",
    "RemovalResult",
    "RetractionDelta",
    "SessionResult",
    "ShardedMutableBlockIndex",
    "ShardedStatistics",
    "StaleSessionError",
    "UnknownEntityError",
    "UpdateDelta",
    "UpdateResult",
    "StreamReplay",
    "StreamTrainingError",
    "evaluate_retained_ids",
    "ground_truth_id_pairs",
    "interleave_profiles",
    "live_truth_id_pairs",
    "replay_stream",
    "split_bootstrap",
    "train_frozen_model",
]
