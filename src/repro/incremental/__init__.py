"""Incremental streaming meta-blocking.

The batch pipeline (:mod:`repro.core`) recomputes blocking, feature
generation, scoring and pruning from scratch on every run.  This subsystem
provides the streaming execution mode: entities are inserted one at a time,
each insert costs work proportional to its candidate delta, and a frozen
batch-trained classifier serves online match decisions.

* :class:`MutableBlockIndex` — the incrementally maintained token/block
  inverted index and entity x block CSR incidence structure;
* :class:`DeltaFeatureGenerator` — weighting-scheme feature vectors for the
  candidate delta of an insert, reusing the sparse backend's kernels;
* :class:`MatchingSession` — the online facade: frozen classifier, per-insert
  scored matches under running WEP/top-K thresholds, and an exact
  batch-equivalent :meth:`MatchingSession.retained` finalisation.
"""

from .delta import DeltaFeatureGenerator
from .index import IncrementalStatistics, InsertDelta, MutableBlockIndex
from .session import (
    FrozenModel,
    InsertResult,
    MatchingSession,
    OnlinePruningPolicy,
    OnlineTopK,
    OnlineWEP,
    SessionResult,
)
from .stream import (
    StreamReplay,
    StreamTrainingError,
    evaluate_retained_ids,
    ground_truth_id_pairs,
    interleave_profiles,
    replay_stream,
    split_bootstrap,
    train_frozen_model,
)

__all__ = [
    "DeltaFeatureGenerator",
    "FrozenModel",
    "IncrementalStatistics",
    "InsertDelta",
    "InsertResult",
    "MatchingSession",
    "MutableBlockIndex",
    "OnlinePruningPolicy",
    "OnlineTopK",
    "OnlineWEP",
    "SessionResult",
    "StreamReplay",
    "StreamTrainingError",
    "evaluate_retained_ids",
    "ground_truth_id_pairs",
    "interleave_profiles",
    "replay_stream",
    "split_bootstrap",
    "train_frozen_model",
]
