"""Signature-sharded streaming index for parallel ingest.

:class:`ShardedMutableBlockIndex` splits the inverted index of
:class:`~repro.incremental.MutableBlockIndex` across K shards by *signature*
(token): shard ``k`` owns every block whose key hashes to ``k``
(:func:`repro.parallel.shard_of_signature`), so the shards' block sets are
disjoint and their mutations are independent — the routing layer the
ROADMAP's "sharded MutableBlockIndex for parallel ingest" asks for.

Every mutation is routed to **all** shards with the entity's signatures
filtered per shard (a shard whose filter yields no signature still registers
the entity with an empty row).  That choice is what makes the shards
mergeable by construction:

* every shard sees every entity in the same order, so node ids — and the
  canonical batch numbering — are **identical across shards**;
* per-entity aggregates are sums of disjoint per-shard block contributions;
* the global candidate-pair set is the packed-key union of the per-shard
  pair sets (a pair co-occurring under tokens of two shards appears in
  both and is deduplicated by the merge);
* the entity x block CSR is the row-wise concatenation of the shard CSRs
  with shard-major block-id offsets.

Tokenization — the CPU-heavy Python part of ingest — is performed once per
mutation by the router (never K times) and, for bulk loads, can be fanned
out over a :class:`repro.parallel.ParallelExecutor`; the per-shard index
updates are independent by construction and ready to be dispatched to
shard-affine workers.

:meth:`ShardedMutableBlockIndex.statistics` exposes the same duck-typed
statistics contract as :class:`~repro.incremental.IncrementalStatistics`,
and :meth:`candidate_set`/:meth:`canonical_candidates`/:meth:`snapshot_blocks`
mirror the unsharded index — the equivalence tests assert a sharded index
fed any interleaving of add/remove/update/bulk matches the unsharded one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..blocking.base import BlockingMethod
from ..blocking.token_blocking import TokenBlocking
from ..datamodel import BlockCollection, CandidateSet, EntityIndexSpace, EntityProfile
from ..weights.sparse import (
    EntityBlockCSR,
    PairCooccurrence,
    PairCooccurrenceCache,
    compute_pair_cooccurrence,
    entity_block_csr_from_memberships,
)
from .index import (
    DuplicateEntityError,
    MutableBlockIndex,
    UnknownEntityError,
    pack_pair_keys,
)


class ShardedStatistics:
    """Merged read-only statistics over the shards (duck-types
    :class:`~repro.incremental.IncrementalStatistics`).

    Aggregates are merged on construction; obtain a fresh view per feature
    computation, as with the unsharded index.
    """

    def __init__(self, index: "ShardedMutableBlockIndex") -> None:
        self._index = index
        self._pair_cache = PairCooccurrenceCache()
        shards = index.shards
        num_slots = index.num_slots

        self.num_blocks = sum(shard.num_nonempty_blocks for shard in shards)
        self.total_cardinality = float(
            sum(shard.total_cardinality for shard in shards)
        )

        def summed(attribute: str) -> np.ndarray:
            total = np.zeros(num_slots, dtype=np.float64)
            for shard in shards:
                total += getattr(shard, attribute).view()
            return total

        self.blocks_per_entity = summed("_blocks_per_entity")
        self.entity_cardinality = summed("_entity_cardinality")
        self.entity_inv_cardinality = summed("_entity_inv_cardinality")
        self.entity_inv_size = summed("_entity_inv_size")
        self._degrees: Optional[np.ndarray] = None
        self._merged: Optional[Tuple[EntityBlockCSR, np.ndarray, np.ndarray]] = None

    def local_candidate_counts_sparse(self) -> np.ndarray:
        """LCP per node slot — distinct live candidates, from the merged pairs.

        Per-shard degrees cannot be summed (a pair co-occurring under two
        shards' tokens would count twice); the merged distinct pair set
        gives the exact global degree.
        """
        if self._degrees is None:
            left, right = self._index._merged_pairs()
            degrees = np.zeros(self._index.num_slots, dtype=np.float64)
            if left.size:
                degrees += np.bincount(left, minlength=degrees.size)
                degrees += np.bincount(right, minlength=degrees.size)
            self._degrees = degrees
        return self._degrees

    # The loop-backend schemes call the non-sparse name; serve the same array.
    local_candidate_counts = local_candidate_counts_sparse

    def pair_cooccurrence(self, candidates: CandidateSet) -> PairCooccurrence:
        """Batched co-occurrence aggregates over the merged shard CSR."""
        if self._merged is None:
            self._merged = self._index._merged_csr()
        csr, inverse_cardinalities, inverse_sizes = self._merged
        return self._pair_cache.get(
            candidates,
            lambda: compute_pair_cooccurrence(
                csr,
                inverse_cardinalities,
                inverse_sizes,
                candidates.left,
                candidates.right,
            ),
        )


class ShardedMutableBlockIndex:
    """K signature-sharded :class:`MutableBlockIndex` instances behind the
    unsharded aggregate/equivalence contract.

    Parameters
    ----------
    blocking:
        The signature extractor (default :class:`TokenBlocking`); the router
        tokenizes with it once per mutation.
    bilateral:
        Clean-Clean (``True``) vs Dirty ER (``False``) stream shape.
    num_shards:
        Number of signature shards (usually the intended worker count).
    name:
        Label used in snapshots and reports.
    executor:
        Optional :class:`repro.parallel.ParallelExecutor`; bulk-load
        tokenization is fanned out over it.
    """

    def __init__(
        self,
        blocking: Optional[BlockingMethod] = None,
        bilateral: bool = False,
        num_shards: int = 2,
        name: str = "sharded-stream",
        executor=None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.blocking = blocking if blocking is not None else TokenBlocking()
        self.bilateral = bilateral
        self.num_shards = num_shards
        self.name = name
        self.executor = executor
        self.shards: List[MutableBlockIndex] = [
            MutableBlockIndex(
                blocking=self.blocking, bilateral=bilateral, name=f"{name}#{shard}"
            )
            for shard in range(num_shards)
        ]
        # merged-pair cache, invalidated by every mutation (the merge is an
        # O(P log P) union across shards — too costly per num_pairs read)
        self._mutations = 0
        self._pairs_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None
        self._wal = None

    # -- durability --------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Compaction generation (identical in every shard)."""
        return self.shards[0].generation

    def attach_wal(self, wal) -> None:
        """Journal every mutation of this router to ``wal``.

        The sharded index keeps **one** log at the router level — shards
        never journal (their ``_wal`` stays ``None``), so each logical
        operation appears exactly once.  A fresh log receives a meta record
        describing the topology so recovery can rebuild the router before
        any snapshot exists.
        """
        wal.open()
        if wal.is_fresh:
            wal.append_record(
                {
                    "op": "meta",
                    "format": 1,
                    "kind": "sharded",
                    "bilateral": self.bilateral,
                    "num_shards": self.num_shards,
                    "name": self.name,
                }
            )
        self._wal = wal

    def _log_record(self, record) -> None:
        if self._wal is not None:
            self._wal.append_record(record)

    # -- routing helpers ---------------------------------------------------------
    def _split_signatures(self, signatures) -> List[List[str]]:
        from ..parallel.planner import shard_of_signature

        split: List[List[str]] = [[] for _ in range(self.num_shards)]
        for signature in signatures:
            split[shard_of_signature(signature, self.num_shards)].append(signature)
        return split

    def _shards_of(self, signatures) -> List[int]:
        """The shards an operation's signatures route to (log observability)."""
        from ..parallel.planner import shard_of_signature

        return sorted(
            {shard_of_signature(signature, self.num_shards) for signature in signatures}
        )

    def _tokenize_bulk(self, profiles: Sequence[EntityProfile]) -> List[List[str]]:
        if self.executor is not None and self.executor.workers > 1 and len(profiles) > 1:
            from ..parallel.executor import split_ranges
            from ..parallel.worker import signature_lists_chunk

            chunks = self.executor.starmap(
                signature_lists_chunk,
                [
                    (tuple(profiles[start:stop]), self.blocking)
                    for start, stop in split_ranges(
                        len(profiles), self.executor.workers
                    )
                ],
            )
            return [lists for chunk in chunks for lists in chunk]
        return self.blocking.signature_lists(_ProfileView(profiles))

    # -- mutations ---------------------------------------------------------------
    def add_entity(self, profile: EntityProfile, side: int = 0):
        """Insert one entity into every shard; returns the per-shard deltas."""
        self.shards[0]._check_side(side)
        if self.shards[0].has_entity(profile.entity_id, side=side):
            raise DuplicateEntityError(profile.entity_id, side)
        signatures = sorted(self.blocking.signatures_of(profile))
        if self._wal is not None:
            self._log_record(
                {
                    "op": "add",
                    "id": profile.entity_id,
                    "side": side,
                    "sig": signatures,
                    "shards": self._shards_of(signatures),
                }
            )
        return self._apply_insert(profile.entity_id, side, signatures)

    def _apply_insert(self, entity_id: str, side: int, signatures):
        """Insert with pre-extracted signatures: tokenize never, split per
        shard, forward to each shard's replay entry point."""
        self._mutations += 1
        split = self._split_signatures(signatures)
        return [
            shard._apply_insert(entity_id, side, split[position])
            for position, shard in enumerate(self.shards)
        ]

    def add_entities(self, profiles, side: int = 0):
        """Insert several entities one at a time (per-shard delta lists)."""
        return [self.add_entity(profile, side=side) for profile in profiles]

    def add_entities_bulk(self, profiles: Sequence[EntityProfile], side: int = 0):
        """One-pass bulk load: tokenize once (optionally across workers),
        then one per-shard bulk insert each; returns the per-shard deltas."""
        profiles = list(profiles)
        self.shards[0]._check_side(side)
        seen_batch = set()
        for profile in profiles:
            if self.shards[0].has_entity(profile.entity_id, side=side):
                raise DuplicateEntityError(profile.entity_id, side)
            if profile.entity_id in seen_batch:
                raise DuplicateEntityError(profile.entity_id, side)
            seen_batch.add(profile.entity_id)
        signature_lists = self._tokenize_bulk(profiles)
        entries = [
            (profile.entity_id, list(signatures))
            for profile, signatures in zip(profiles, signature_lists)
        ]
        if self._wal is not None:
            self._log_record({"op": "bulk", "side": side, "entities": entries})
        return self._apply_bulk(entries, side)

    def _apply_bulk(self, entries, side: int):
        """Bulk-insert pre-tokenized ``(entity_id, signatures)`` entries."""
        self._mutations += 1
        per_shard: List[List[Tuple[str, List[str]]]] = [
            [] for _ in range(self.num_shards)
        ]
        for entity_id, signatures in entries:
            split = self._split_signatures(signatures)
            for position in range(self.num_shards):
                per_shard[position].append((entity_id, split[position]))
        return [
            shard._apply_bulk(per_shard[position], side)
            for position, shard in enumerate(self.shards)
        ]

    def remove_entity(self, entity_id: str, side: int = 0):
        """Retract one entity from every shard; returns the per-shard deltas."""
        if not self.shards[0].has_entity(entity_id, side=side):
            raise UnknownEntityError(entity_id, side)
        self._log_record({"op": "remove", "id": entity_id, "side": side})
        return self._apply_remove(entity_id, side)

    def _apply_remove(self, entity_id: str, side: int):
        self._mutations += 1
        return [shard.remove_entity(entity_id, side=side) for shard in self.shards]

    def update_entity(self, profile: EntityProfile, side: int = 0):
        """Correct one entity in place in every shard (retract + re-insert)."""
        self.shards[0]._check_side(side)
        if not self.shards[0].has_entity(profile.entity_id, side=side):
            raise UnknownEntityError(profile.entity_id, side)
        signatures = sorted(self.blocking.signatures_of(profile))
        if self._wal is not None:
            self._log_record(
                {
                    "op": "update",
                    "id": profile.entity_id,
                    "side": side,
                    "sig": signatures,
                    "shards": self._shards_of(signatures),
                }
            )
        return self._apply_update(profile.entity_id, side, signatures)

    def _apply_update(self, entity_id: str, side: int, signatures):
        self._mutations += 1
        split = self._split_signatures(signatures)
        return [
            shard._apply_update(entity_id, side, split[position])
            for position, shard in enumerate(self.shards)
        ]

    def compact(self) -> None:
        """Compact every shard (see :meth:`MutableBlockIndex.compact`).

        Shards rebuild their live entities in the same arrival order, so
        node ids stay aligned across shards and the canonical view is
        unchanged.  The router's log (if any) is untouched — compaction does
        not change the logical state.
        """
        self._mutations += 1  # raw node ids are renumbered — drop the cache
        for shard in self.shards:
            shard.compact()

    def _dump_live_entities(self):
        """Live entities per side with their signatures merged across shards
        (shard-major per entity) — the sharded snapshot state.

        Every shard registers every entity in the same order, so per-side
        dumps align positionally; re-splitting the merged signature list on
        rebuild routes each signature back to its original shard in its
        original order.
        """
        dumps = [shard._dump_live_entities() for shard in self.shards]
        merged = {}
        for side, entries in dumps[0].items():
            merged[side] = [
                (
                    entity_id,
                    [
                        signature
                        for dump in dumps
                        for signature in dump[side][position][1]
                    ],
                )
                for position, (entity_id, _) in enumerate(entries)
            ]
        return merged

    # -- delta shipping ----------------------------------------------------------
    def epochs(self) -> List[int]:
        """Per-shard mutation epochs (see :attr:`MutableBlockIndex.epoch`)."""
        return [shard.epoch for shard in self.shards]

    def enable_delta_tracking(self) -> List[int]:
        """Arm delta tracking on every shard; returns the per-shard epochs."""
        return [shard.enable_delta_tracking() for shard in self.shards]

    def export_deltas(self, since_epochs) -> Optional[List[dict]]:
        """Per-shard deltas since ``since_epochs``, all-or-nothing.

        Returns ``None`` — without rebasing any shard's tracker — unless
        every shard can serve a delta from its requested epoch; callers must
        then fall back to full exports for all shards.
        """
        if len(since_epochs) != self.num_shards:
            raise ValueError("one base epoch per shard required")
        for shard, epoch in zip(self.shards, since_epochs):
            if shard._delta is None or shard._delta.base_epoch != int(epoch):
                return None
        return [
            shard.export_delta(epoch)
            for shard, epoch in zip(self.shards, since_epochs)
        ]

    # -- aggregate contract ------------------------------------------------------
    @property
    def num_entities(self) -> int:
        """Number of live entities (identical in every shard)."""
        return self.shards[0].num_entities

    @property
    def num_slots(self) -> int:
        """Number of node ids ever assigned (identical in every shard)."""
        return self.shards[0].num_slots

    @property
    def num_blocks(self) -> int:
        """Total number of blocks across the shards (disjoint by token)."""
        return sum(shard.num_blocks for shard in self.shards)

    @property
    def num_pairs(self) -> int:
        """Number of live distinct candidate pairs across the shards."""
        return int(self._merged_pairs()[0].size)

    def __len__(self) -> int:
        return self.num_entities

    def entity_id(self, node: int) -> str:
        """The identifier of the entity holding node id ``node``."""
        return self.shards[0].entity_id(node)

    def side_of(self, node: int) -> int:
        """0/1 for live nodes, -1 for tombstoned slots."""
        return self.shards[0].side_of(node)

    def sides(self) -> np.ndarray:
        """Per-node side flags (0 = first, 1 = second, -1 = removed)."""
        return self.shards[0].sides()

    def is_live(self, node: int) -> bool:
        """Whether the node slot currently holds a live entity."""
        return self.shards[0].is_live(node)

    def has_entity(self, entity_id: str, side: int = 0) -> bool:
        """Whether ``entity_id`` is currently live on ``side``."""
        return self.shards[0].has_entity(entity_id, side=side)

    def node_of(self, entity_id: str, side: int = 0) -> int:
        """The node id of a live entity (identical in every shard)."""
        return self.shards[0].node_of(entity_id, side=side)

    def index_space(self) -> EntityIndexSpace:
        """An index space sized to the live per-side totals."""
        return self.shards[0].index_space()

    def canonical_node_ids(self) -> np.ndarray:
        """Compact batch node id per slot (identical in every shard)."""
        return self.shards[0].canonical_node_ids()

    # -- merged read-side structures ---------------------------------------------
    def _merged_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """The distinct live pairs across shards, sorted by packed key.

        Cached per mutation epoch: repeated reads (``num_pairs`` polling,
        statistics, candidate sets) between mutations pay the cross-shard
        union once.
        """
        if self._pairs_cache is not None and self._pairs_cache[0] == self._mutations:
            return self._pairs_cache[1], self._pairs_cache[2]
        parts = []
        for shard in self.shards:
            alive = shard._pair_alive.view()
            parts.append(
                pack_pair_keys(
                    shard._pair_left.view()[alive], shard._pair_right.view()[alive]
                )
            )
        if parts:
            keys = np.unique(np.concatenate(parts))
            left, right = keys >> np.int64(32), keys & np.int64((1 << 32) - 1)
        else:
            left = np.empty(0, dtype=np.int64)
            right = np.empty(0, dtype=np.int64)
        self._pairs_cache = (self._mutations, left, right)
        return left, right

    def candidate_set(self) -> CandidateSet:
        """All live distinct candidate pairs, sorted by packed pair key."""
        left, right = self._merged_pairs()
        return CandidateSet(left, right, self.index_space())

    def canonical_candidates(self, candidates: CandidateSet) -> CandidateSet:
        """Renumber a live candidate set into the compact batch node space."""
        return self.shards[0].canonical_candidates(candidates)

    def _merged_csr(self) -> Tuple[EntityBlockCSR, np.ndarray, np.ndarray]:
        """Row-wise concatenation of the shard CSRs with block-id offsets.

        Returns the merged entity x block CSR plus the concatenated
        per-block inverse weight vectors, aligned with the offset block ids.
        """
        num_slots = self.num_slots
        node_parts: List[np.ndarray] = []
        block_parts: List[np.ndarray] = []
        inv_cardinality_parts: List[np.ndarray] = []
        inv_size_parts: List[np.ndarray] = []
        offset = 0
        for shard in self.shards:
            csr = shard.csr()
            counts = np.diff(csr.indptr)
            node_parts.append(
                np.repeat(np.arange(counts.size, dtype=np.int64), counts)
            )
            block_parts.append(csr.indices + offset)
            inv_cardinality_parts.append(shard._inverse_block_cardinalities.view())
            inv_size_parts.append(shard._inverse_block_sizes.view())
            offset += csr.num_blocks
        merged = entity_block_csr_from_memberships(
            np.concatenate(node_parts) if node_parts else np.empty(0, dtype=np.int64),
            np.concatenate(block_parts) if block_parts else np.empty(0, dtype=np.int64),
            num_slots,
            offset,
            assume_unique=True,
        )
        inverse_cardinalities = (
            np.concatenate(inv_cardinality_parts)
            if inv_cardinality_parts
            else np.empty(0, dtype=np.float64)
        )
        inverse_sizes = (
            np.concatenate(inv_size_parts)
            if inv_size_parts
            else np.empty(0, dtype=np.float64)
        )
        return merged, inverse_cardinalities, inverse_sizes

    def csr(self) -> EntityBlockCSR:
        """The merged entity x block incidence structure."""
        return self._merged_csr()[0]

    def statistics(self) -> ShardedStatistics:
        """A fresh merged statistics view over the shards' current state."""
        return ShardedStatistics(self)

    def snapshot_blocks(self) -> BlockCollection:
        """All comparison-spawning blocks across the shards, canonical ids.

        Block order is shard-major (then per-shard insertion order), which
        differs from the unsharded index's global insertion order; no
        downstream consumer depends on block order.
        """
        collections = [shard.snapshot_blocks() for shard in self.shards]
        blocks = [block for collection in collections for block in collection]
        return BlockCollection(blocks, self.index_space(), name=self.name)


class _ProfileView:
    """Minimal iterable view over a profile list for ``signature_lists``."""

    def __init__(self, profiles: Sequence[EntityProfile]) -> None:
        self._profiles = profiles

    def __iter__(self):
        return iter(self._profiles)

    def __len__(self) -> int:
        return len(self._profiles)
