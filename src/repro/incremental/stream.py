"""Streaming application harness: bootstrap training + stream replay.

``repro stream`` (and the dynamic-churn bench) share this layer.  A
Clean-Clean dataset is split into a *bootstrap* prefix used to train the
frozen classifier through the regular batch pipeline, and the whole
collection is then replayed through a :class:`MatchingSession` one entity at
a time, recording per-insert latency and the candidate delta of every
insert.  A non-zero ``delete_fraction`` interleaves seeded random entity
removals with the inserts (``repro stream --deletes``), exercising the fully
dynamic index; per-delete latency and retraction sizes are recorded
alongside the insert metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..blocking import prepare_blocks
from ..core.pipeline import GeneralizedSupervisedMetaBlocking
from ..datamodel import EntityCollection, EntityProfile, GroundTruth
from ..datasets.benchmarks import CleanCleanDataset
from ..utils.rng import SeedLike, make_rng
from ..weights import BLAST_FEATURE_SET
from .session import FrozenModel, MatchingSession, OnlinePruningPolicy, SessionResult


class StreamTrainingError(ValueError):
    """The dataset cannot train a frozen model (no usable ground truth)."""


def ground_truth_id_pairs(
    ground_truth: GroundTruth,
    first: EntityCollection,
    second: Optional[EntityCollection] = None,
) -> Set[Tuple[str, str]]:
    """Map a ground truth's node pairs back to entity-id pairs."""
    pairs: Set[Tuple[str, str]] = set()
    size_first = len(first)
    for i, j in ground_truth:
        if second is None:
            pairs.add((first[i].entity_id, first[j].entity_id))
        else:
            pairs.add((first[i].entity_id, second[j - size_first].entity_id))
    return pairs


def split_bootstrap(
    dataset: CleanCleanDataset, fraction: float
) -> Tuple[EntityCollection, EntityCollection, GroundTruth]:
    """The bootstrap prefix of a dataset: leading entities of both sides.

    Raises
    ------
    StreamTrainingError
        When the bootstrap contains no ground-truth duplicate — the frozen
        classifier cannot be trained without labelled matches.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("bootstrap fraction must be in (0, 1]")
    n_first = max(2, int(round(fraction * len(dataset.first))))
    n_second = max(2, int(round(fraction * len(dataset.second))))
    boot_first = EntityCollection(
        list(dataset.first)[:n_first], name=f"{dataset.first.name}|boot"
    )
    boot_second = EntityCollection(
        list(dataset.second)[:n_second], name=f"{dataset.second.name}|boot"
    )
    retained = [
        (a, b)
        for a, b in ground_truth_id_pairs(
            dataset.ground_truth, dataset.first, dataset.second
        )
        if a in boot_first and b in boot_second
    ]
    if not retained:
        raise StreamTrainingError(
            f"the bootstrap prefix ({fraction:.0%} of {dataset.name}) contains no "
            "ground-truth duplicate; increase --bootstrap or provide a dataset "
            "with ground truth"
        )
    truth = GroundTruth.from_id_pairs(retained, boot_first, boot_second)
    return boot_first, boot_second, truth


def train_frozen_model(
    dataset: CleanCleanDataset,
    bootstrap_fraction: float = 0.5,
    feature_set: Sequence[str] = BLAST_FEATURE_SET,
    pruning: str = "BLAST",
    training_size: int = 50,
    seed: SeedLike = 0,
    backend: str = "sparse",
) -> FrozenModel:
    """Train a frozen classifier on the dataset's bootstrap prefix.

    The bootstrap runs through the batch pipeline with Block Purging and
    Block Filtering *disabled*, matching the raw token blocks the streaming
    index maintains, so the classifier sees the same feature distribution it
    will score online.
    """
    boot_first, boot_second, truth = split_bootstrap(dataset, bootstrap_fraction)
    prepared = prepare_blocks(
        boot_first, boot_second, apply_purging=False, apply_filtering=False
    )
    pipeline = GeneralizedSupervisedMetaBlocking(
        feature_set=feature_set,
        pruning=pruning,
        training_size=training_size,
        seed=seed,
        backend=backend,
    )
    try:
        result = pipeline.run(
            prepared.blocks, prepared.candidates, truth, stats=prepared.statistics()
        )
    except ValueError as error:
        raise StreamTrainingError(
            f"cannot train the frozen classifier on the {dataset.name} bootstrap: "
            f"{error}"
        ) from error
    return FrozenModel.from_batch(result)


def interleave_profiles(
    first: EntityCollection, second: EntityCollection
) -> Iterator[Tuple[EntityProfile, int]]:
    """Alternate entities from the two sides, draining the longer one last.

    This is the arrival order ``repro stream`` and the equivalence tests
    replay — deliberately interleaved, so the index handles node ids that do
    not form contiguous per-side ranges.
    """
    iter_first = iter(first)
    iter_second = iter(second)
    while True:
        emitted = False
        profile = next(iter_first, None)
        if profile is not None:
            emitted = True
            yield profile, 0
        profile = next(iter_second, None)
        if profile is not None:
            emitted = True
            yield profile, 1
        if not emitted:
            return


def _empty_floats() -> np.ndarray:
    return np.zeros(0, dtype=np.float64)


def _empty_ints() -> np.ndarray:
    return np.zeros(0, dtype=np.int64)


@dataclass
class StreamReplay:
    """Everything measured while replaying a dataset through a session."""

    #: the session after all inserts (query :meth:`MatchingSession.retained`)
    session: MatchingSession
    #: wall-clock seconds of every insert
    insert_seconds: np.ndarray
    #: candidate delta (number of new pairs) of every insert
    delta_sizes: np.ndarray
    #: number of streaming matches reported online per insert
    online_matches: np.ndarray
    #: wall-clock seconds of every interleaved delete (empty without churn)
    delete_seconds: np.ndarray = field(default_factory=_empty_floats)
    #: retraction delta (number of dead pairs) of every delete
    retraction_sizes: np.ndarray = field(default_factory=_empty_ints)

    @property
    def num_inserts(self) -> int:
        """Number of entities streamed."""
        return int(self.insert_seconds.size)

    @property
    def num_deletes(self) -> int:
        """Number of entities removed during the replay."""
        return int(self.delete_seconds.size)

    @property
    def total_seconds(self) -> float:
        """Summed insert time."""
        return float(self.insert_seconds.sum())

    @property
    def throughput(self) -> float:
        """Inserts per second."""
        total = self.total_seconds
        return self.num_inserts / total if total > 0 else float("inf")

    def latency_percentiles(self) -> Tuple[float, float, float]:
        """(mean, median, p95) insert latency in seconds."""
        if self.insert_seconds.size == 0:
            return (0.0, 0.0, 0.0)
        return (
            float(self.insert_seconds.mean()),
            float(np.percentile(self.insert_seconds, 50)),
            float(np.percentile(self.insert_seconds, 95)),
        )


def replay_stream(
    dataset: CleanCleanDataset,
    model: FrozenModel,
    pruning: str = "BLAST",
    online: Union[str, OnlinePruningPolicy, None] = "wep",
    top_k: int = 1000,
    limit: Optional[int] = None,
    delete_fraction: float = 0.0,
    churn_seed: SeedLike = 0,
    wal_path=None,
    snapshot_every: Optional[int] = None,
    wal_sync: str = "always",
) -> StreamReplay:
    """Stream a Clean-Clean dataset through a fresh matching session.

    Parameters
    ----------
    delete_fraction:
        Probability, after each insert, of removing one uniformly chosen
        *live* entity (seeded by ``churn_seed``) — a simple churn model that
        interleaves retractions with arrivals.  ``0.0`` (default) replays
        inserts only.
    churn_seed:
        Seed for the churn decisions, so delete-heavy replays are exactly
        reproducible.
    wal_path:
        Optional write-ahead-log directory; the replayed session journals
        every mutation and can be resumed with
        :meth:`MatchingSession.recover` (``repro stream --wal``).
    snapshot_every:
        Mutations between automatic session checkpoints when journaling.
    wal_sync:
        ``"always"`` or ``"batch"`` (see :class:`MatchingSession`).
    """
    if not 0.0 <= delete_fraction < 1.0:
        raise ValueError("delete_fraction must be in [0, 1)")
    session = MatchingSession(
        model,
        bilateral=True,
        pruning=pruning,
        online=online,
        top_k=top_k,
        wal_path=wal_path,
        snapshot_every=snapshot_every,
        wal_sync=wal_sync,
    )
    rng = make_rng(churn_seed)
    seconds: List[float] = []
    deltas: List[int] = []
    matches: List[int] = []
    delete_seconds: List[float] = []
    retraction_sizes: List[int] = []
    live: List[Tuple[str, int]] = []
    for profile, side in interleave_profiles(dataset.first, dataset.second):
        if limit is not None and len(seconds) >= limit:
            break
        started = time.perf_counter()
        result = session.insert(profile, side=side)
        seconds.append(time.perf_counter() - started)
        deltas.append(result.num_new_pairs)
        matches.append(len(result.matches))
        live.append((profile.entity_id, side))
        if delete_fraction and live and rng.random() < delete_fraction:
            victim_id, victim_side = live.pop(int(rng.integers(len(live))))
            started = time.perf_counter()
            removal = session.remove(victim_id, side=victim_side)
            delete_seconds.append(time.perf_counter() - started)
            retraction_sizes.append(removal.num_retracted_pairs)
    return StreamReplay(
        session=session,
        insert_seconds=np.asarray(seconds, dtype=np.float64),
        delta_sizes=np.asarray(deltas, dtype=np.int64),
        online_matches=np.asarray(matches, dtype=np.int64),
        delete_seconds=np.asarray(delete_seconds, dtype=np.float64),
        retraction_sizes=np.asarray(retraction_sizes, dtype=np.int64),
    )


def live_truth_id_pairs(
    index, truth_id_pairs: Set[Tuple[str, str]]
) -> Set[Tuple[str, str]]:
    """Restrict ground truth to duplicates whose entities are both *live*.

    Recall over a dynamic stream must be judged against what the index can
    possibly retain: duplicates never streamed (``--limit``) or since
    retracted (``--deletes``) are not misses, they are out of scope.  This
    recomputes the eligible set from the index's live state rather than from
    what was ever inserted.
    """
    return {
        (a, b)
        for a, b in truth_id_pairs
        if index.has_entity(a, 0) and index.has_entity(b, 1)
    }


def evaluate_retained_ids(
    result: SessionResult, truth_id_pairs: Set[Tuple[str, str]]
) -> Tuple[float, float]:
    """(recall, precision) of a session's retained id pairs vs ground truth."""
    retained = result.retained_id_set()
    if not truth_id_pairs:
        return (0.0, 0.0)
    hits = len(retained & truth_id_pairs)
    recall = hits / len(truth_id_pairs)
    precision = hits / len(retained) if retained else 0.0
    return (recall, precision)
