"""Incrementally maintained block index and co-occurrence statistics.

The batch pipeline flattens a finished :class:`BlockCollection` into the
entity x block CSR incidence structure once (:mod:`repro.weights.sparse`).
Streaming workloads cannot afford that: inserting one entity must cost work
proportional to the blocks it touches, not to the whole collection.

:class:`MutableBlockIndex` is the streaming counterpart.  It maintains, under
``add_entity`` / ``add_entities``:

* the token -> block inverted index (one block per distinct signature);
* the entity x block CSR incidence structure — rows are appended in arrival
  order, per-row block ids sorted, so the batched intersection kernels of
  :func:`repro.weights.sparse.compute_pair_cooccurrence` apply unchanged;
* per-block sizes ``|b|``, comparison cardinalities ``||b||`` and their
  inverse weight vectors;
* the per-entity aggregates every weighting scheme needs (``|B_i|``,
  ``||e_i||``, ``Σ 1/||b||``, ``Σ 1/|b|``, LCP degrees), adjusted in place
  for every entity of a touched block;
* the distinct candidate-pair registry and the per-insert *delta* (the new
  pairs the insert introduced).

All aggregates follow the batch conventions: blocks spawning no comparison
are excluded from ``|B|``, ``|B_i|`` and the inverse sums (they do not exist
in a batch collection after ``without_empty_blocks``), so a
:class:`MutableBlockIndex` fed the final data one entity at a time exposes
exactly the statistics :class:`repro.weights.BlockStatistics` computes on the
batch block collection.  Block Purging / Block Filtering are *batch-only*
cleaning steps (their thresholds are global functions of the final
collection) and are intentionally not replayed here; equivalence is against
``prepare_blocks(..., apply_purging=False, apply_filtering=False)``.

Per-insert cost is ``O(Σ_{b ∈ tokens(e)} |b|)`` — the size of the touched
blocks, i.e. the insert's candidate delta — independent of the number of
entities or pairs already indexed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..blocking.base import BlockingMethod
from ..blocking.token_blocking import TokenBlocking
from ..datamodel import (
    Block,
    BlockCollection,
    CandidateSet,
    EntityIndexSpace,
    EntityProfile,
)
from ..weights.sparse import (
    EntityBlockCSR,
    PairCooccurrence,
    PairCooccurrenceCache,
    compute_pair_cooccurrence,
)


class _Growable:
    """An append-only NumPy array with amortised O(1) growth.

    ``view()`` returns a zero-copy view of the active prefix; the view is
    invalidated by the next append that triggers a reallocation, so callers
    must not hold it across inserts.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, dtype, capacity: int = 64) -> None:
        self._data = np.zeros(max(1, capacity), dtype=dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed > self._data.size:
            capacity = self._data.size
            while capacity < needed:
                capacity *= 2
            grown = np.zeros(capacity, dtype=self._data.dtype)
            grown[: self._size] = self._data[: self._size]
            self._data = grown

    def append(self, value) -> None:
        self._reserve(1)
        self._data[self._size] = value
        self._size += 1

    def extend(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        self._reserve(values.size)
        self._data[self._size : self._size + values.size] = values
        self._size += values.size

    def view(self) -> np.ndarray:
        return self._data[: self._size]

    def __getitem__(self, key):
        return self.view()[key]

    def __setitem__(self, key, value):
        self.view()[key] = value


@dataclass(frozen=True)
class InsertDelta:
    """What one ``add_entity`` changed: the new node and its new pairs."""

    #: node id assigned to the inserted entity
    node: int
    #: the inserted entity's identifier
    entity_id: str
    #: block ids of the entity's signatures (sorted)
    block_ids: np.ndarray
    #: node ids the new entity now co-occurs with (each is one new pair)
    counterparts: np.ndarray
    #: positions of the new pairs in the index's global pair registry
    pair_positions: np.ndarray

    @property
    def num_new_pairs(self) -> int:
        """Number of candidate pairs introduced by the insert."""
        return int(self.counterparts.size)


class IncrementalStatistics:
    """A read-only statistics view over a :class:`MutableBlockIndex`.

    Duck-types the subset of :class:`repro.weights.BlockStatistics` the
    vectorized (``sparse``) scheme implementations consume, backed by the
    index's incrementally maintained arrays.  Obtain a fresh view per feature
    computation (:meth:`MutableBlockIndex.statistics`); views snapshot nothing
    and always read the index's current state.
    """

    def __init__(self, index: "MutableBlockIndex") -> None:
        self._index = index
        self._pair_cache = PairCooccurrenceCache()

    @property
    def num_blocks(self) -> int:
        """``|B|`` — blocks spawning at least one comparison."""
        return self._index.num_nonempty_blocks

    @property
    def total_cardinality(self) -> float:
        """``||B||`` — the total number of comparisons."""
        return float(self._index.total_cardinality)

    @property
    def blocks_per_entity(self) -> np.ndarray:
        """``|B_i|`` per node (comparison-spawning blocks only)."""
        return self._index._blocks_per_entity.view()

    @property
    def entity_cardinality(self) -> np.ndarray:
        """``||e_i||`` — summed cardinality of every node's blocks."""
        return self._index._entity_cardinality.view()

    @property
    def entity_inv_cardinality(self) -> np.ndarray:
        """``Σ_{b∈B_i} 1/||b||`` per node."""
        return self._index._entity_inv_cardinality.view()

    @property
    def entity_inv_size(self) -> np.ndarray:
        """``Σ_{b∈B_i} 1/|b|`` per node."""
        return self._index._entity_inv_size.view()

    def local_candidate_counts_sparse(self) -> np.ndarray:
        """``LCP(e_i)`` — maintained as the candidate-pair degree per node."""
        return self._index._degrees.view()

    # The loop-backend schemes call the non-sparse name; serve the same array.
    local_candidate_counts = local_candidate_counts_sparse

    def pair_cooccurrence(self, candidates: CandidateSet) -> PairCooccurrence:
        """Batched co-occurrence aggregates via the sparse intersection kernel.

        Cached per candidate-set object (weakly referenced) so the schemes of
        one feature computation share a single intersection pass, exactly as
        :meth:`repro.weights.BlockStatistics.pair_cooccurrence` does.
        """
        index = self._index
        return self._pair_cache.get(
            candidates,
            lambda: compute_pair_cooccurrence(
                index.csr(),
                index._inverse_block_cardinalities.view(),
                index._inverse_block_sizes.view(),
                candidates.left,
                candidates.right,
            ),
        )


class MutableBlockIndex:
    """A token/block inverted index supporting online entity insertion.

    Parameters
    ----------
    blocking:
        The signature extractor (default :class:`TokenBlocking`, as in the
        paper's evaluation).  Only :meth:`BlockingMethod.signatures_of` is
        used — index assembly is incremental.
    bilateral:
        ``True`` for Clean-Clean ER streams (entities arrive tagged with a
        source side, only cross-side pairs are candidates); ``False`` for
        Dirty ER streams (every co-occurring pair is a candidate).
    name:
        Label used in snapshots and reports.
    """

    def __init__(
        self,
        blocking: Optional[BlockingMethod] = None,
        bilateral: bool = False,
        name: str = "stream",
    ) -> None:
        self.blocking = blocking if blocking is not None else TokenBlocking()
        self.bilateral = bilateral
        self.name = name

        # token -> block id
        self._block_ids: Dict[str, int] = {}
        self._block_keys: List[str] = []
        # per-block membership (node ids, in arrival order)
        self._members_first: List[List[int]] = []
        self._members_second: List[List[int]] = []
        # per-block aggregates
        self._block_sizes = _Growable(np.int64)
        self._block_cardinalities = _Growable(np.int64)
        self._inverse_block_cardinalities = _Growable(np.float64)
        self._inverse_block_sizes = _Growable(np.float64)

        # entity registry; ids are namespaced per side — Clean-Clean sources
        # commonly number their entities independently
        self._entity_ids: List[str] = []
        self._node_of_id: Dict[Tuple[int, str], int] = {}
        self._sides = _Growable(np.int8)
        self._side_counts = [0, 0]

        # entity x block CSR (rows in arrival order, sorted ids per row)
        self._indptr = _Growable(np.int64, capacity=256)
        self._indptr.append(0)
        self._indices = _Growable(np.int64, capacity=1024)

        # per-entity aggregates (over comparison-spawning blocks)
        self._blocks_per_entity = _Growable(np.float64, capacity=256)
        self._entity_cardinality = _Growable(np.float64, capacity=256)
        self._entity_inv_cardinality = _Growable(np.float64, capacity=256)
        self._entity_inv_size = _Growable(np.float64, capacity=256)
        self._degrees = _Growable(np.float64, capacity=256)

        # candidate-pair registry (canonical: left < right by construction)
        self._pair_left = _Growable(np.int64, capacity=1024)
        self._pair_right = _Growable(np.int64, capacity=1024)

        # global aggregates
        self.total_cardinality: int = 0
        self.num_nonempty_blocks: int = 0
        self.total_block_assignments: int = 0

    # -- container protocol ----------------------------------------------------
    @property
    def num_entities(self) -> int:
        """Number of inserted entities (= node ids)."""
        return len(self._entity_ids)

    @property
    def num_blocks(self) -> int:
        """Number of blocks, including those spawning no comparison yet."""
        return len(self._block_keys)

    @property
    def num_pairs(self) -> int:
        """Number of distinct candidate pairs registered so far."""
        return len(self._pair_left)

    def __len__(self) -> int:
        return self.num_entities

    def entity_id(self, node: int) -> str:
        """The identifier of the entity holding node id ``node``."""
        return self._entity_ids[node]

    def side_of(self, node: int) -> int:
        """0 for first-collection nodes, 1 for second-collection nodes."""
        return int(self._sides[node])

    def sides(self) -> np.ndarray:
        """Per-node side flags (0 = first collection, 1 = second)."""
        return self._sides.view()

    def node_of(self, entity_id: str, side: int = 0) -> int:
        """The node id assigned to ``entity_id`` on ``side``."""
        return self._node_of_id[(side, entity_id)]

    def has_entity(self, entity_id: str, side: int = 0) -> bool:
        """Whether ``entity_id`` was inserted on ``side``."""
        return (side, entity_id) in self._node_of_id

    def index_space(self) -> EntityIndexSpace:
        """An index space with the correct per-side totals.

        Streaming assigns node ids in arrival order (sides may interleave),
        so only the *totals* of the returned space are meaningful — not the
        contiguous first/second ranges batch spaces guarantee.
        """
        if self.bilateral:
            return EntityIndexSpace(self._side_counts[0], self._side_counts[1])
        return EntityIndexSpace(self.num_entities)

    # -- insertion -------------------------------------------------------------
    def add_entity(self, profile: EntityProfile, side: int = 0) -> InsertDelta:
        """Insert one entity and return the candidate delta it introduced.

        Parameters
        ----------
        profile:
            The entity profile; signatures are extracted with the configured
            blocking method.
        side:
            Source collection (0 or 1) for bilateral streams; must be 0 for
            unilateral streams.
        """
        if side not in (0, 1):
            raise ValueError("side must be 0 or 1")
        if side == 1 and not self.bilateral:
            raise ValueError("side=1 requires a bilateral index")
        if (side, profile.entity_id) in self._node_of_id:
            raise ValueError(
                f"duplicate entity_id {profile.entity_id!r} on side {side}"
            )

        node = self.num_entities
        self._entity_ids.append(profile.entity_id)
        self._node_of_id[(side, profile.entity_id)] = node
        self._sides.append(side)
        self._side_counts[side] += 1
        for array in (
            self._blocks_per_entity,
            self._entity_cardinality,
            self._entity_inv_cardinality,
            self._entity_inv_size,
            self._degrees,
        ):
            array.append(0.0)

        signatures = sorted(self.blocking.signatures_of(profile))
        block_ids: List[int] = []
        counterpart_parts: List[np.ndarray] = []
        for signature in signatures:
            block_id = self._block_ids.get(signature)
            if block_id is None:
                block_id = self._create_block(signature)
            block_ids.append(block_id)
            counterparts = self._join_block(block_id, node, side)
            if counterparts is not None:
                counterpart_parts.append(counterparts)

        sorted_block_ids = np.sort(np.asarray(block_ids, dtype=np.int64))
        self._indices.extend(sorted_block_ids)
        self._indptr.append(len(self._indices))

        if counterpart_parts:
            counterparts = np.unique(np.concatenate(counterpart_parts))
        else:
            counterparts = np.empty(0, dtype=np.int64)

        first_position = self.num_pairs
        if counterparts.size:
            self._pair_left.extend(counterparts)
            self._pair_right.extend(np.full(counterparts.size, node, dtype=np.int64))
            degrees = self._degrees.view()
            degrees[counterparts] += 1.0
            degrees[node] += float(counterparts.size)
        pair_positions = np.arange(first_position, self.num_pairs, dtype=np.int64)

        return InsertDelta(
            node=node,
            entity_id=profile.entity_id,
            block_ids=sorted_block_ids,
            counterparts=counterparts,
            pair_positions=pair_positions,
        )

    def add_entities(
        self, profiles: Iterable[EntityProfile], side: int = 0
    ) -> List[InsertDelta]:
        """Insert several entities from the same side, one at a time."""
        return [self.add_entity(profile, side=side) for profile in profiles]

    def _create_block(self, signature: str) -> int:
        block_id = len(self._block_keys)
        self._block_ids[signature] = block_id
        self._block_keys.append(signature)
        self._members_first.append([])
        self._members_second.append([])
        self._block_sizes.append(0)
        self._block_cardinalities.append(0)
        self._inverse_block_cardinalities.append(1.0)
        self._inverse_block_sizes.append(1.0)
        return block_id

    def _join_block(self, block_id: int, node: int, side: int) -> Optional[np.ndarray]:
        """Add ``node`` to a block, updating every affected aggregate.

        Returns the node ids the new entity is compared against within this
        block (``None`` when the block spawns no new comparison).
        """
        first = self._members_first[block_id]
        second = self._members_second[block_id]
        old_size = len(first) + len(second)
        old_cardinality = int(self._block_cardinalities[block_id])
        if self.bilateral:
            counterpart_list = second if side == 0 else first
            new_cardinality = (
                (len(first) + (side == 0)) * (len(second) + (side == 1))
            )
        else:
            counterpart_list = first
            members = old_size + 1
            new_cardinality = members * (members - 1) // 2
        new_size = old_size + 1
        delta_cardinality = new_cardinality - old_cardinality
        self.total_cardinality += delta_cardinality

        # Adjust the aggregates of the block's existing members.  Both
        # branches are O(|b|); the arrays below are views into the growable
        # buffers, so the updates land in place.
        blocks_per_entity = self._blocks_per_entity.view()
        entity_cardinality = self._entity_cardinality.view()
        entity_inv_cardinality = self._entity_inv_cardinality.view()
        entity_inv_size = self._entity_inv_size.view()
        if old_cardinality > 0:
            existing = np.fromiter(
                first + second, dtype=np.int64, count=old_size
            )
            entity_cardinality[existing] += delta_cardinality
            entity_inv_cardinality[existing] += (
                1.0 / new_cardinality - 1.0 / old_cardinality
            )
            entity_inv_size[existing] += 1.0 / new_size - 1.0 / old_size
            self.total_block_assignments += 1
        elif new_cardinality > 0:
            # the block just started spawning comparisons: it now counts
            # towards |B|, |B_i| and the inverse sums of all its members
            existing = np.fromiter(first + second, dtype=np.int64, count=old_size)
            blocks_per_entity[existing] += 1.0
            entity_cardinality[existing] += new_cardinality
            entity_inv_cardinality[existing] += 1.0 / new_cardinality
            entity_inv_size[existing] += 1.0 / new_size
            self.num_nonempty_blocks += 1
            self.total_block_assignments += new_size

        if new_cardinality > 0:
            blocks_per_entity[node] += 1.0
            entity_cardinality[node] += new_cardinality
            entity_inv_cardinality[node] += 1.0 / new_cardinality
            entity_inv_size[node] += 1.0 / new_size

        counterparts = (
            np.fromiter(counterpart_list, dtype=np.int64, count=len(counterpart_list))
            if counterpart_list
            else None
        )

        if self.bilateral and side == 1:
            second.append(node)
        else:
            first.append(node)
        self._block_sizes[block_id] = new_size
        self._block_cardinalities[block_id] = new_cardinality
        self._inverse_block_cardinalities[block_id] = 1.0 / max(new_cardinality, 1)
        self._inverse_block_sizes[block_id] = 1.0 / max(new_size, 1)
        return counterparts

    # -- read-side structures --------------------------------------------------
    def csr(self) -> EntityBlockCSR:
        """The current entity x block incidence structure (zero-copy views)."""
        return EntityBlockCSR(
            indptr=self._indptr.view(),
            indices=self._indices.view(),
            num_blocks=self.num_blocks,
        )

    def statistics(self) -> IncrementalStatistics:
        """A fresh statistics view over the index's current state."""
        return IncrementalStatistics(self)

    def candidate_set(self) -> CandidateSet:
        """All distinct candidate pairs registered so far (copied arrays)."""
        return CandidateSet(
            self._pair_left.view().copy(),
            self._pair_right.view().copy(),
            self.index_space(),
        )

    def delta_candidate_set(self, delta: InsertDelta) -> CandidateSet:
        """The candidate pairs introduced by one insert, as a candidate set."""
        left = delta.counterparts.copy()
        right = np.full(left.size, delta.node, dtype=np.int64)
        return CandidateSet(left, right, self.index_space())

    def snapshot_blocks(self) -> BlockCollection:
        """Materialise the comparison-spawning blocks as a batch collection.

        The snapshot matches what the batch pipeline (with purging/filtering
        disabled) builds from the same final data, up to block order and node
        numbering.  Only the index space's totals are meaningful for
        interleaved bilateral streams (see :meth:`index_space`).
        """
        blocks = []
        for block_id, key in enumerate(self._block_keys):
            if self._block_cardinalities[block_id] <= 0:
                continue
            blocks.append(
                Block(
                    key=key,
                    entities_first=sorted(self._members_first[block_id]),
                    entities_second=sorted(self._members_second[block_id]),
                )
            )
        return BlockCollection(blocks, self.index_space(), name=self.name)
