"""Incrementally maintained block index and co-occurrence statistics.

The batch pipeline flattens a finished :class:`BlockCollection` into the
entity x block CSR incidence structure once (:mod:`repro.weights.sparse`).
Streaming workloads cannot afford that: inserting one entity must cost work
proportional to the blocks it touches, not to the whole collection.

:class:`MutableBlockIndex` is the streaming counterpart.  It is *fully
dynamic*: entities can be inserted (:meth:`~MutableBlockIndex.add_entity`,
:meth:`~MutableBlockIndex.add_entities_bulk`), retracted
(:meth:`~MutableBlockIndex.remove_entity`) and corrected
(:meth:`~MutableBlockIndex.update_entity`).  Under every mutation it
maintains:

* the token -> block inverted index (one block per distinct signature);
* the entity x block CSR incidence structure — rows are appended in arrival
  order, per-row block ids sorted, so the batched intersection kernels of
  :func:`repro.weights.sparse.compute_pair_cooccurrence` apply unchanged;
* per-block sizes ``|b|``, comparison cardinalities ``||b||`` and their
  inverse weight vectors;
* the per-entity aggregates every weighting scheme needs (``|B_i|``,
  ``||e_i||``, ``Σ 1/||b||``, ``Σ 1/|b|``, LCP degrees), adjusted in place
  for every entity of a touched block — insertions add the contributions,
  removals reverse them exactly;
* the distinct candidate-pair registry and the per-mutation *delta*: the new
  pairs an insert introduced (:class:`InsertDelta`) or the dead pairs a
  removal retracted (:class:`RetractionDelta`).

All aggregates follow the batch conventions: blocks spawning no comparison
are excluded from ``|B|``, ``|B_i|`` and the inverse sums (they do not exist
in a batch collection after ``without_empty_blocks``), so a
:class:`MutableBlockIndex` fed any interleaving of inserts, removals,
updates and bulk loads ending in collection ``C`` exposes exactly the
statistics :class:`repro.weights.BlockStatistics` computes on the batch
block collection built from ``C``.  Block Purging / Block Filtering are
*batch-only* cleaning steps (their thresholds are global functions of the
final collection) and are intentionally not replayed here; equivalence is
against ``prepare_blocks(..., apply_purging=False, apply_filtering=False)``.

Node ids are assigned in arrival order and never reused: a removed entity's
slot is tombstoned (its aggregates zeroed, its CSR row left behind but
unreferenced) and an updated entity re-enters under a fresh node id.  The
:meth:`~MutableBlockIndex.canonical_node_ids` mapping renumbers the *live*
nodes into the compact batch numbering (first-collection survivors in
arrival order, then second-collection survivors), which is what
:meth:`~MutableBlockIndex.snapshot_blocks` and the session's exact
finalisation use to reproduce batch pruning bit-for-bit.

Per-insert cost is ``O(Σ_{b ∈ tokens(e)} |b|)`` — the size of the touched
blocks, i.e. the mutation's candidate delta — independent of the number of
entities or pairs already indexed; removals cost the same as the insert
they reverse.  :meth:`~MutableBlockIndex.add_entities_bulk` amortises the
per-entity overhead further: the batch is tokenized and dictionary-encoded
in one array pass (the :mod:`repro.blocking.arrayops` path), merged into
the live CSR with one append, and its candidate pairs deduplicated with
packed keys instead of per-insert ``np.unique`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..blocking.arrayops import sorted_unique
from ..blocking.base import BlockingMethod
from ..blocking.token_blocking import TokenBlocking
from ..datamodel import (
    Block,
    BlockCollection,
    CandidateSet,
    EntityIndexSpace,
    EntityProfile,
)
from ..weights.sparse import (
    EntityBlockCSR,
    PairCooccurrence,
    PairCooccurrenceCache,
    compute_pair_cooccurrence,
)


class UnknownEntityError(KeyError):
    """An operation referenced an entity id the index has never seen (or
    has already removed) on the given side.

    Raised *before* any aggregate is touched, so a failed removal or lookup
    can never leave the index in a corrupted state.
    """

    def __init__(self, entity_id: str, side: int) -> None:
        super().__init__(entity_id)
        self.entity_id = entity_id
        self.side = side

    def __str__(self) -> str:
        return (
            f"unknown entity_id {self.entity_id!r} on side {self.side}; "
            "it was never inserted or has already been removed"
        )


class DuplicateEntityError(ValueError):
    """An insert reused an entity id that is currently live on that side."""

    def __init__(self, entity_id: str, side: int) -> None:
        super().__init__(
            f"duplicate entity_id {entity_id!r} on side {side}; remove or "
            "update the existing entity instead of re-adding it"
        )
        self.entity_id = entity_id
        self.side = side


#: node ids must stay below 2^32 for the packed pair keys to be collision
#: free; the insert path refuses to assign ids past this bound
MAX_NODE_ID = 1 << 32


def _node_id_overflow(node: int) -> OverflowError:
    return OverflowError(
        f"node id {node} reaches 2^32: packed pair keys would collide and "
        "silently corrupt the candidate registry; compact() the index to "
        "renumber live entities into fresh slots"
    )


def _pack_pair(left: int, right: int) -> int:
    """A unique dict key for a canonical (left < right) node pair."""
    if left >= MAX_NODE_ID or right >= MAX_NODE_ID:
        raise _node_id_overflow(max(left, right))
    return (left << 32) | right


def pack_pair_keys(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_pack_pair`: one stable int64 key per node pair.

    Node ids below 2^32 make ``left << 32 | right`` collision free and —
    unlike a stride-based packing — stable as the index grows.  The
    registry and the session's online tie-breaking share this definition;
    ids at or past the bound raise :class:`OverflowError` rather than
    producing colliding keys.
    """
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    if left.size and (
        int(left.max()) >= MAX_NODE_ID or int(right.max()) >= MAX_NODE_ID
    ):
        raise _node_id_overflow(max(int(left.max()), int(right.max())))
    return (left << np.int64(32)) | right


class _Growable:
    """An append-only NumPy array with amortised O(1) growth.

    ``view()`` returns a zero-copy view of the active prefix; the view is
    invalidated by the next append that triggers a reallocation, so callers
    must not hold it across inserts.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, dtype, capacity: int = 64) -> None:
        self._data = np.zeros(max(1, capacity), dtype=dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed > self._data.size:
            capacity = self._data.size
            while capacity < needed:
                capacity *= 2
            grown = np.zeros(capacity, dtype=self._data.dtype)
            grown[: self._size] = self._data[: self._size]
            self._data = grown

    def append(self, value) -> None:
        self._reserve(1)
        self._data[self._size] = value
        self._size += 1

    def extend(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        self._reserve(values.size)
        self._data[self._size : self._size + values.size] = values
        self._size += values.size

    def view(self) -> np.ndarray:
        return self._data[: self._size]

    def __getitem__(self, key):
        return self.view()[key]

    def __setitem__(self, key, value):
        self.view()[key] = value


class _DeltaTracker:
    """Dirty sets accumulated between two :meth:`MutableBlockIndex.export_delta`
    calls.

    Tracks *which* blocks and entities changed plus the tombstoned registry
    positions; the changed values themselves are read off the index at
    export time.  Everything appended past the recorded base watermarks
    (slots, CSR, blocks, pair registry) is shipped as a tail, so only
    in-place changes need explicit marking.
    """

    __slots__ = (
        "base_epoch",
        "base_slots",
        "base_blocks",
        "base_indptr",
        "base_indices",
        "base_pairs",
        "blocks",
        "entities",
        "dead_pairs",
    )

    def __init__(self, index: "MutableBlockIndex") -> None:
        self.rebase(index)

    def rebase(self, index: "MutableBlockIndex") -> None:
        self.base_epoch = index.epoch
        self.base_slots = index.num_slots
        self.base_blocks = index.num_blocks
        self.base_indptr = len(index._indptr)
        self.base_indices = len(index._indices)
        self.base_pairs = index.num_registered_pairs
        self.blocks: set = set()
        self.entities: set = set()
        self.dead_pairs: List[int] = []


@dataclass(frozen=True)
class InsertDelta:
    """What one ``add_entity`` changed: the new node and its new pairs."""

    #: node id assigned to the inserted entity
    node: int
    #: the inserted entity's identifier
    entity_id: str
    #: block ids of the entity's signatures (sorted)
    block_ids: np.ndarray
    #: node ids the new entity now co-occurs with (each is one new pair)
    counterparts: np.ndarray
    #: positions of the new pairs in the index's global pair registry
    pair_positions: np.ndarray

    @property
    def num_new_pairs(self) -> int:
        """Number of candidate pairs introduced by the insert."""
        return int(self.counterparts.size)


@dataclass(frozen=True)
class RetractionDelta:
    """What one ``remove_entity`` reversed: the dead node and its dead pairs.

    The ``pair_positions`` point into the index's global pair registry —
    the same positions the pairs were assigned at insert time — so a
    :class:`~repro.incremental.MatchingSession` can evict exactly those
    pairs from its online aggregates (WEP running average, top-K queue).
    """

    #: node id the removed entity held (never reused)
    node: int
    #: the removed entity's identifier
    entity_id: str
    #: source side the entity was registered on
    side: int
    #: block ids of the entity's signatures (sorted)
    block_ids: np.ndarray
    #: node ids the entity co-occurred with (each is one retracted pair)
    counterparts: np.ndarray
    #: registry positions of the retracted pairs (aligned with counterparts)
    pair_positions: np.ndarray

    @property
    def num_retracted_pairs(self) -> int:
        """Number of candidate pairs retracted by the removal."""
        return int(self.counterparts.size)


@dataclass(frozen=True)
class UpdateDelta:
    """An in-place correction: the retraction of the old version plus the
    insert of the new one (under a fresh node id)."""

    retraction: RetractionDelta
    insert: InsertDelta


@dataclass(frozen=True)
class BulkInsertDelta:
    """What one ``add_entities_bulk`` changed: the new nodes and new pairs.

    Unlike a sequence of :class:`InsertDelta`, the new pairs are reported
    once for the whole batch, deduplicated and sorted by packed candidate
    key — the registry order therefore differs from what one-at-a-time
    inserts would produce, but the pair *set*, every aggregate, and the
    exact finalisation are identical (the equivalence tests assert this).
    """

    #: node ids assigned to the batch, in input order
    nodes: np.ndarray
    #: the inserted entities' identifiers, in input order
    entity_ids: Tuple[str, ...]
    #: source side the batch was registered on
    side: int
    #: left node ids of the new pairs (canonical, left < right)
    pair_left: np.ndarray
    #: right node ids of the new pairs
    pair_right: np.ndarray
    #: positions of the new pairs in the index's global pair registry
    pair_positions: np.ndarray

    @property
    def num_new_pairs(self) -> int:
        """Number of candidate pairs introduced by the bulk load."""
        return int(self.pair_left.size)


class IncrementalStatistics:
    """A read-only statistics view over a :class:`MutableBlockIndex`.

    Duck-types the subset of :class:`repro.weights.BlockStatistics` the
    vectorized (``sparse``) scheme implementations consume, backed by the
    index's incrementally maintained arrays.  Obtain a fresh view per feature
    computation (:meth:`MutableBlockIndex.statistics`); views snapshot nothing
    and always read the index's current state.  Per-node arrays cover every
    node slot ever assigned; tombstoned slots hold zeros and are never
    referenced by a live candidate pair.
    """

    def __init__(self, index: "MutableBlockIndex") -> None:
        self._index = index
        self._pair_cache = PairCooccurrenceCache()

    @property
    def num_blocks(self) -> int:
        """``|B|`` — blocks spawning at least one comparison."""
        return self._index.num_nonempty_blocks

    @property
    def total_cardinality(self) -> float:
        """``||B||`` — the total number of comparisons."""
        return float(self._index.total_cardinality)

    @property
    def blocks_per_entity(self) -> np.ndarray:
        """``|B_i|`` per node (comparison-spawning blocks only)."""
        return self._index._blocks_per_entity.view()

    @property
    def entity_cardinality(self) -> np.ndarray:
        """``||e_i||`` — summed cardinality of every node's blocks."""
        return self._index._entity_cardinality.view()

    @property
    def entity_inv_cardinality(self) -> np.ndarray:
        """``Σ_{b∈B_i} 1/||b||`` per node."""
        return self._index._entity_inv_cardinality.view()

    @property
    def entity_inv_size(self) -> np.ndarray:
        """``Σ_{b∈B_i} 1/|b|`` per node."""
        return self._index._entity_inv_size.view()

    def local_candidate_counts_sparse(self) -> np.ndarray:
        """``LCP(e_i)`` — maintained as the candidate-pair degree per node."""
        return self._index._degrees.view()

    # The loop-backend schemes call the non-sparse name; serve the same array.
    local_candidate_counts = local_candidate_counts_sparse

    def pair_cooccurrence(self, candidates: CandidateSet) -> PairCooccurrence:
        """Batched co-occurrence aggregates via the sparse intersection kernel.

        Cached per candidate-set object (weakly referenced) so the schemes of
        one feature computation share a single intersection pass, exactly as
        :meth:`repro.weights.BlockStatistics.pair_cooccurrence` does.
        """
        index = self._index
        return self._pair_cache.get(
            candidates,
            lambda: compute_pair_cooccurrence(
                index.csr(),
                index._inverse_block_cardinalities.view(),
                index._inverse_block_sizes.view(),
                candidates.left,
                candidates.right,
            ),
        )


class MutableBlockIndex:
    """A token/block inverted index supporting online insertion, removal,
    in-place update and bulk loading.

    Parameters
    ----------
    blocking:
        The signature extractor (default :class:`TokenBlocking`, as in the
        paper's evaluation).  Only :meth:`BlockingMethod.signatures_of` /
        :meth:`BlockingMethod.signature_lists` are used — index assembly is
        incremental.
    bilateral:
        ``True`` for Clean-Clean ER streams (entities arrive tagged with a
        source side, only cross-side pairs are candidates); ``False`` for
        Dirty ER streams (every co-occurring pair is a candidate).
    name:
        Label used in snapshots and reports.
    """

    def __init__(
        self,
        blocking: Optional[BlockingMethod] = None,
        bilateral: bool = False,
        name: str = "stream",
    ) -> None:
        self.blocking = blocking if blocking is not None else TokenBlocking()
        self.bilateral = bilateral
        self.name = name

        # token -> block id
        self._block_ids: Dict[str, int] = {}
        self._block_keys: List[str] = []
        # per-block membership (node ids, in arrival order)
        self._members_first: List[List[int]] = []
        self._members_second: List[List[int]] = []
        # per-block aggregates
        self._block_sizes = _Growable(np.int64)
        self._block_cardinalities = _Growable(np.int64)
        self._inverse_block_cardinalities = _Growable(np.float64)
        self._inverse_block_sizes = _Growable(np.float64)

        # entity registry; ids are namespaced per side — Clean-Clean sources
        # commonly number their entities independently.  Node ids are never
        # reused: a removed entity's slot keeps side -1 as a tombstone.
        self._entity_ids: List[str] = []
        self._node_of_id: Dict[Tuple[int, str], int] = {}
        self._sides = _Growable(np.int8)
        self._side_counts = [0, 0]

        # entity x block CSR (rows in arrival order, sorted ids per row;
        # tombstoned rows are left behind and never referenced by live pairs)
        self._indptr = _Growable(np.int64, capacity=256)
        self._indptr.append(0)
        self._indices = _Growable(np.int64, capacity=1024)

        # per-entity aggregates (over comparison-spawning blocks)
        self._blocks_per_entity = _Growable(np.float64, capacity=256)
        self._entity_cardinality = _Growable(np.float64, capacity=256)
        self._entity_inv_cardinality = _Growable(np.float64, capacity=256)
        self._entity_inv_size = _Growable(np.float64, capacity=256)
        self._degrees = _Growable(np.float64, capacity=256)

        # candidate-pair registry (canonical: left < right by construction);
        # positions are stable, retracted pairs are tombstoned via _pair_alive
        self._pair_left = _Growable(np.int64, capacity=1024)
        self._pair_right = _Growable(np.int64, capacity=1024)
        self._pair_alive = _Growable(np.bool_, capacity=1024)
        self._pair_keys = _Growable(np.int64, capacity=1024)
        # packed (left, right) -> registry position of every *live* pair,
        # synced lazily from _pair_keys (removals need it, inserts don't —
        # keeping it off the insert path is what lets bulk loads stay
        # array-only); _pair_synced counts the registry prefix already merged
        self._pair_position: Dict[int, int] = {}
        self._pair_synced: int = 0
        self._num_live_pairs: int = 0

        # global aggregates
        self.total_cardinality: int = 0
        self.num_nonempty_blocks: int = 0
        self.total_block_assignments: int = 0

        # durability / lifecycle state: an optional write-ahead log every
        # mutation is journaled to (append-before-apply), and a generation
        # counter bumped by compact() so sessions holding raw registry
        # positions can detect an out-of-band compaction
        self._wal = None
        self._wal_suspended = False
        self.generation: int = 0

        # delta shipping: every applied mutation bumps ``epoch``; when a
        # reader has enabled tracking (enable_delta_tracking), the dirty
        # sets record which blocks/entities changed since the tracker's
        # base epoch so export_delta can ship O(changed) instead of
        # O(state).  Single-consumer by design (the serve read path).
        self.epoch: int = 0
        self._delta: Optional[_DeltaTracker] = None

    # -- durability --------------------------------------------------------------
    def attach_wal(self, wal) -> None:
        """Journal every following mutation to ``wal``.

        A fresh log receives a meta record describing the index topology,
        so recovery can reconstruct the right index kind even before the
        first snapshot is written.  Attaching an already-written log (the
        resume path of :func:`repro.persistence.recover_index`) appends
        behind the existing records.
        """
        wal.open()
        if wal.is_fresh:
            wal.append_record(
                {
                    "op": "meta",
                    "format": 1,
                    "kind": "index",
                    "bilateral": self.bilateral,
                    "name": self.name,
                }
            )
        self._wal = wal

    def _log_record(self, record: dict) -> None:
        """Append one logical record (no-op without an attached log)."""
        if self._wal is not None and not self._wal_suspended:
            self._wal.append_record(record)

    # -- container protocol ----------------------------------------------------
    @property
    def num_entities(self) -> int:
        """Number of *live* entities (inserted and not removed)."""
        return self._side_counts[0] + self._side_counts[1]

    @property
    def num_slots(self) -> int:
        """Number of node ids ever assigned, including tombstoned slots."""
        return len(self._entity_ids)

    @property
    def num_blocks(self) -> int:
        """Number of blocks, including those spawning no comparison yet."""
        return len(self._block_keys)

    @property
    def num_pairs(self) -> int:
        """Number of *live* distinct candidate pairs."""
        return self._num_live_pairs

    @property
    def num_registered_pairs(self) -> int:
        """Number of registry positions ever assigned (live + retracted)."""
        return len(self._pair_left)

    def __len__(self) -> int:
        return self.num_entities

    def entity_id(self, node: int) -> str:
        """The identifier of the entity holding node id ``node``."""
        return self._entity_ids[node]

    def side_of(self, node: int) -> int:
        """0 for first-collection nodes, 1 for second-collection nodes.

        Tombstoned slots report -1.
        """
        return int(self._sides[node])

    def is_live(self, node: int) -> bool:
        """Whether the node slot currently holds a live entity."""
        return int(self._sides[node]) >= 0

    def sides(self) -> np.ndarray:
        """Per-node side flags (0 = first, 1 = second, -1 = removed)."""
        return self._sides.view()

    def node_of(self, entity_id: str, side: int = 0) -> int:
        """The node id assigned to the live entity ``entity_id`` on ``side``.

        Raises
        ------
        UnknownEntityError
            When no live entity with that id exists on that side.
        """
        node = self._node_of_id.get((side, entity_id))
        if node is None:
            raise UnknownEntityError(entity_id, side)
        return node

    def has_entity(self, entity_id: str, side: int = 0) -> bool:
        """Whether ``entity_id`` is currently live on ``side``."""
        return (side, entity_id) in self._node_of_id

    def index_space(self) -> EntityIndexSpace:
        """An index space sized to the *live* per-side totals.

        Streaming assigns node ids in arrival order (sides may interleave and
        removed slots are never reused), so raw node ids do not fit this
        space — only its totals are meaningful.  The
        :meth:`canonical_node_ids` mapping renumbers live nodes into it.
        """
        if self.bilateral:
            return EntityIndexSpace(self._side_counts[0], self._side_counts[1])
        return EntityIndexSpace(self._side_counts[0])

    def canonical_node_ids(self) -> np.ndarray:
        """Map every node slot to its compact batch node id (-1 when dead).

        Live first-collection nodes get 0..n1-1 in arrival order, live
        second-collection nodes n1..n1+n2-1 — exactly the numbering the
        batch pipeline assigns when handed the surviving entities in arrival
        order.  This is the bridge that lets the exact finalisation apply
        batch pruning (including its packed-key tie-breaking) unchanged.
        """
        sides = self._sides.view()
        canonical = np.full(sides.size, -1, dtype=np.int64)
        first_nodes = np.flatnonzero(sides == 0)
        canonical[first_nodes] = np.arange(first_nodes.size, dtype=np.int64)
        second_nodes = np.flatnonzero(sides == 1)
        canonical[second_nodes] = first_nodes.size + np.arange(
            second_nodes.size, dtype=np.int64
        )
        return canonical

    # -- insertion -------------------------------------------------------------
    def add_entity(self, profile: EntityProfile, side: int = 0) -> InsertDelta:
        """Insert one entity and return the candidate delta it introduced.

        Parameters
        ----------
        profile:
            The entity profile; signatures are extracted with the configured
            blocking method.
        side:
            Source collection (0 or 1) for bilateral streams; must be 0 for
            unilateral streams.

        Raises
        ------
        DuplicateEntityError
            When an entity with the same id is currently live on ``side``
            (remove or :meth:`update_entity` it instead).
        """
        self._check_side(side)
        if (side, profile.entity_id) in self._node_of_id:
            raise DuplicateEntityError(profile.entity_id, side)
        signatures = sorted(self.blocking.signatures_of(profile))
        self._log_record(
            {"op": "add", "id": profile.entity_id, "side": side, "sig": signatures}
        )
        return self._apply_insert(profile.entity_id, side, signatures)

    def _apply_insert(
        self, entity_id: str, side: int, signatures: Sequence[str]
    ) -> InsertDelta:
        """Insert with pre-extracted distinct signatures (the WAL replay and
        sharded-routing entry point; arguments must already be validated)."""
        self.epoch += 1
        node = self._register_entity(entity_id, side)

        block_ids: List[int] = []
        counterpart_parts: List[np.ndarray] = []
        for signature in signatures:
            block_id = self._block_ids.get(signature)
            if block_id is None:
                block_id = self._create_block(signature)
            block_ids.append(block_id)
            counterparts = self._join_block(block_id, node, side)
            if counterparts is not None:
                counterpart_parts.append(counterparts)

        sorted_block_ids = np.sort(np.asarray(block_ids, dtype=np.int64))
        self._indices.extend(sorted_block_ids)
        self._indptr.append(len(self._indices))

        if counterpart_parts:
            counterparts = np.unique(np.concatenate(counterpart_parts))
        else:
            counterparts = np.empty(0, dtype=np.int64)

        pair_positions = self._register_pairs(
            counterparts, np.full(counterparts.size, node, dtype=np.int64)
        )

        return InsertDelta(
            node=node,
            entity_id=entity_id,
            block_ids=sorted_block_ids,
            counterparts=counterparts,
            pair_positions=pair_positions,
        )

    def add_entities(
        self, profiles: Iterable[EntityProfile], side: int = 0
    ) -> List[InsertDelta]:
        """Insert several entities from the same side, one at a time."""
        return [self.add_entity(profile, side=side) for profile in profiles]

    def add_entities_bulk(
        self,
        profiles: Sequence[EntityProfile],
        side: int = 0,
        signature_lists: Optional[Sequence[Sequence[str]]] = None,
    ) -> BulkInsertDelta:
        """Insert a batch of same-side entities in one array pass.

        The batch is tokenized with :meth:`BlockingMethod.signature_lists`
        (the array blocking backend's entry point), its memberships
        deduplicated via packed-key sort (:mod:`repro.blocking.arrayops`),
        and the result merged into the live CSR with a single append instead
        of one row append per entity.  Per-block aggregate adjustments are
        applied once per *touched block* (vectorized over that block's old
        and new members), and the batch's new candidate pairs are
        deduplicated globally with packed keys — no per-insert ``np.unique``.

        The resulting index state is identical to calling
        :meth:`add_entity` once per profile, except for the *order* of the
        new pairs in the registry (sorted by packed key rather than grouped
        by insert); every aggregate, the pair set, and the exact
        finalisation are unaffected.

        ``signature_lists`` accepts pre-extracted per-profile signatures
        (one list per profile, input order) so callers that tokenized the
        batch elsewhere — the serving daemon's executor fan-out — skip the
        in-process tokenization pass.

        Returns
        -------
        BulkInsertDelta
            The assigned node ids and the batch's new pairs.
        """
        profiles = list(profiles)
        self._check_side(side)
        seen_batch = set()
        for profile in profiles:
            if (side, profile.entity_id) in self._node_of_id:
                raise DuplicateEntityError(profile.entity_id, side)
            if profile.entity_id in seen_batch:
                raise DuplicateEntityError(profile.entity_id, side)
            seen_batch.add(profile.entity_id)

        # batch tokenization happens before any state change, so a logged
        # bulk record always precedes its application (append-before-apply)
        if signature_lists is None:
            signature_lists = self.blocking.signature_lists(profiles)
        else:
            signature_lists = list(signature_lists)
            if len(signature_lists) != len(profiles):
                raise ValueError(
                    "signature_lists must carry one signature list per profile"
                )
        entries = [
            (profile.entity_id, list(signatures))
            for profile, signatures in zip(profiles, signature_lists)
        ]
        if self._wal is not None and not self._wal_suspended:
            self._log_record({"op": "bulk", "side": side, "entities": entries})
        return self._apply_bulk(entries, side)

    def _apply_bulk(
        self, entries: Sequence[Tuple[str, List[str]]], side: int
    ) -> BulkInsertDelta:
        """Bulk-insert ``(entity_id, signatures)`` entries (the WAL replay,
        snapshot rebuild and compaction entry point; entries must already be
        validated)."""
        self.epoch += 1
        base = self.num_slots
        n_new = len(entries)
        self._register_entities_batch([entity_id for entity_id, _ in entries], side)

        # dictionary encoding against the live block ids
        flat_ids: List[int] = []
        lengths = np.empty(n_new, dtype=np.int64)
        blocks_before = self.num_blocks
        block_ids = self._block_ids
        block_keys = self._block_keys
        members_first = self._members_first
        members_second = self._members_second
        append_id = flat_ids.append
        for offset, (_, signatures) in enumerate(entries):
            lengths[offset] = len(signatures)
            for signature in signatures:
                block_id = block_ids.get(signature)
                if block_id is None:
                    # inline block creation; the per-block aggregate arrays
                    # are extended once for the whole batch below
                    block_id = len(block_keys)
                    block_ids[signature] = block_id
                    block_keys.append(signature)
                    members_first.append([])
                    members_second.append([])
                append_id(block_id)
        created = len(block_keys) - blocks_before
        if created:
            self._block_sizes.extend(np.zeros(created, dtype=np.int64))
            self._block_cardinalities.extend(np.zeros(created, dtype=np.int64))
            self._inverse_block_cardinalities.extend(np.ones(created))
            self._inverse_block_sizes.extend(np.ones(created))
            if self._delta is not None:
                self._delta.blocks.update(range(blocks_before, len(block_keys)))

        num_blocks = np.int64(max(self.num_blocks, 1))
        relative_nodes = np.repeat(np.arange(n_new, dtype=np.int64), lengths)
        block_of = np.asarray(flat_ids, dtype=np.int64)
        if block_of.size:
            # distinct (node, block) memberships, node-major with sorted
            # per-row block ids — exactly the CSR layout
            packed = sorted_unique(relative_nodes * num_blocks + block_of)
            relative_nodes = packed // num_blocks
            block_of = packed % num_blocks

        # one-pass CSR merge: a single extend for the indices, a single
        # extend of cumulative row ends for the pointers
        previous_end = len(self._indices)
        self._indices.extend(block_of)
        row_counts = np.bincount(relative_nodes, minlength=n_new)
        self._indptr.extend(previous_end + np.cumsum(row_counts))

        pair_left, pair_right = self._apply_bulk_memberships(
            block_of, relative_nodes + base, side
        )
        pair_positions = self._register_pairs(pair_left, pair_right)

        return BulkInsertDelta(
            nodes=np.arange(base, base + n_new, dtype=np.int64),
            entity_ids=tuple(entity_id for entity_id, _ in entries),
            side=side,
            pair_left=pair_left,
            pair_right=pair_right,
            pair_positions=pair_positions,
        )

    def _apply_bulk_memberships(
        self, block_of: np.ndarray, nodes: np.ndarray, side: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply a batch's (block, node) memberships to the block state.

        The per-block transitions (sizes, cardinalities, global counters)
        and every per-entity aggregate adjustment — for old members and new
        ones alike — are computed as single vectorized passes over the
        *touched block groups*; the only per-block Python work left is
        gathering the old member lists and emitting the cross-product
        candidate pairs.  Returns the batch's distinct new pairs, canonical
        and sorted by packed key.
        """
        empty = np.empty(0, dtype=np.int64)
        if block_of.size == 0:
            return empty, empty
        order = np.lexsort((nodes, block_of))
        grouped_blocks = block_of[order]
        grouped_nodes = nodes[order]
        starts = np.flatnonzero(np.r_[True, grouped_blocks[1:] != grouped_blocks[:-1]])
        ends = np.r_[starts[1:], grouped_blocks.size]
        touched = grouped_blocks[starts]
        touched_list = touched.tolist()
        added = ends - starts
        if self._delta is not None:
            self._delta.blocks.update(touched_list)

        # old per-block state, gathered vectorized
        old_first = np.fromiter(
            (len(self._members_first[b]) for b in touched_list),
            dtype=np.int64,
            count=touched.size,
        )
        old_second = np.fromiter(
            (len(self._members_second[b]) for b in touched_list),
            dtype=np.int64,
            count=touched.size,
        )
        old_size = old_first + old_second
        old_cardinality = self._block_cardinalities.view()[touched]

        new_size = old_size + added
        if self.bilateral:
            new_first = old_first + (added if side == 0 else 0)
            new_second = old_second + (added if side == 1 else 0)
            new_cardinality = new_first * new_second
        else:
            new_cardinality = new_size * (new_size - 1) // 2

        # global aggregates: one transition per touched block
        was_spawning = old_cardinality > 0
        newly_spawning = ~was_spawning & (new_cardinality > 0)
        spawning = new_cardinality > 0
        self.total_cardinality += int((new_cardinality - old_cardinality).sum())
        self.num_nonempty_blocks += int(newly_spawning.sum())
        self.total_block_assignments += int(
            np.where(was_spawning, added, np.where(newly_spawning, new_size, 0)).sum()
        )

        # per-block state, stored vectorized
        self._block_sizes[touched] = new_size
        self._block_cardinalities[touched] = new_cardinality
        self._inverse_block_cardinalities[touched] = 1.0 / np.maximum(
            new_cardinality, 1
        )
        self._inverse_block_sizes[touched] = 1.0 / np.maximum(new_size, 1)

        # gather old members (for aggregate scatter) and counterparts (for
        # pair emission), extending the member lists as we go; the pair
        # cross-products themselves are emitted in one grouped pass below
        stride = np.int64(max(self.num_slots, 1))
        needs_old = (was_spawning | newly_spawning).tolist()
        old_parts: List[np.ndarray] = []
        old_groups: List[int] = []
        old_counts: List[int] = []
        cp_parts: List[np.ndarray] = []
        cp_groups: List[int] = []
        cp_counts: List[int] = []
        pair_parts: List[np.ndarray] = []
        join_second = self.bilateral and side == 1
        for group, block_id in enumerate(touched_list):
            first = self._members_first[block_id]
            second = self._members_second[block_id]
            new_members = grouped_nodes[starts[group] : ends[group]]
            if self.bilateral:
                counterpart_list = second if side == 0 else first
            else:
                counterpart_list = first
            if counterpart_list:
                cp_parts.append(
                    np.fromiter(
                        counterpart_list, dtype=np.int64, count=len(counterpart_list)
                    )
                )
                cp_groups.append(group)
                cp_counts.append(len(counterpart_list))
            if not self.bilateral and new_members.size >= 2:
                upper_i, upper_j = np.triu_indices(new_members.size, k=1)
                pair_parts.append(
                    new_members[upper_i] * stride + new_members[upper_j]
                )
            if needs_old[group] and (first or second):
                members = first + second
                old_parts.append(
                    np.fromiter(members, dtype=np.int64, count=len(members))
                )
                old_groups.append(group)
                old_counts.append(len(members))
            (second if join_second else first).extend(new_members.tolist())

        if cp_parts:
            # grouped cross product: every counterpart of a touched block
            # pairs with each of the block's new members, all groups at once
            cp_nodes = np.concatenate(cp_parts)
            cp_group = np.repeat(np.asarray(cp_groups, dtype=np.int64), cp_counts)
            per_cp = added[cp_group]
            old = np.repeat(cp_nodes, per_cp)
            span_ends = np.cumsum(per_cp)
            within = np.arange(int(span_ends[-1]), dtype=np.int64) - np.repeat(
                span_ends - per_cp, per_cp
            )
            new = grouped_nodes[np.repeat(starts[cp_group], per_cp) + within]
            pair_parts.append(np.minimum(old, new) * stride + np.maximum(old, new))

        blocks_per_entity = self._blocks_per_entity.view()
        entity_cardinality = self._entity_cardinality.view()
        entity_inv_cardinality = self._entity_inv_cardinality.view()
        entity_inv_size = self._entity_inv_size.view()
        inv_new_cardinality = 1.0 / np.maximum(new_cardinality, 1)
        inv_new_size = 1.0 / np.maximum(new_size, 1)

        # old members: blocks already spawning move old state -> new state,
        # newly spawning blocks contribute their full new state
        if old_parts:
            old_nodes = np.concatenate(old_parts)
            if self._delta is not None:
                self._delta.entities.update(old_nodes.tolist())
            group_of = np.repeat(np.asarray(old_groups, dtype=np.int64), old_counts)
            was = was_spawning[group_of]
            inv_old_cardinality = 1.0 / np.maximum(old_cardinality, 1)
            inv_old_size = 1.0 / np.maximum(old_size, 1)
            np.add.at(
                blocks_per_entity, old_nodes, np.where(was, 0.0, 1.0)
            )
            np.add.at(
                entity_cardinality,
                old_nodes,
                np.where(
                    was, (new_cardinality - old_cardinality)[group_of],
                    new_cardinality[group_of].astype(np.float64),
                ),
            )
            np.add.at(
                entity_inv_cardinality,
                old_nodes,
                np.where(
                    was,
                    (inv_new_cardinality - inv_old_cardinality)[group_of],
                    inv_new_cardinality[group_of],
                ),
            )
            np.add.at(
                entity_inv_size,
                old_nodes,
                np.where(
                    was,
                    (inv_new_size - inv_old_size)[group_of],
                    inv_new_size[group_of],
                ),
            )

        # new members of spawning blocks: their full per-block contribution
        membership_group = np.repeat(
            np.arange(touched.size, dtype=np.int64), added
        )
        in_spawning = spawning[membership_group]
        if np.any(in_spawning):
            target_nodes = grouped_nodes[in_spawning]
            target_groups = membership_group[in_spawning]
            np.add.at(blocks_per_entity, target_nodes, 1.0)
            np.add.at(
                entity_cardinality,
                target_nodes,
                new_cardinality[target_groups].astype(np.float64),
            )
            np.add.at(
                entity_inv_cardinality, target_nodes, inv_new_cardinality[target_groups]
            )
            np.add.at(entity_inv_size, target_nodes, inv_new_size[target_groups])

        if not pair_parts:
            return empty, empty
        # every pair involves at least one new node, so none can already be
        # registered — a packed-key dedup across blocks suffices
        keys = sorted_unique(np.concatenate(pair_parts))
        return keys // stride, keys % stride

    def _register_entities_batch(
        self, entity_ids: Sequence[str], side: int
    ) -> None:
        """Batch counterpart of :meth:`_register_entity` (one extend each)."""
        n_new = len(entity_ids)
        if n_new == 0:
            return
        base = self.num_slots
        if base + n_new > MAX_NODE_ID:
            raise _node_id_overflow(base + n_new - 1)
        entity_ids = list(entity_ids)
        self._entity_ids.extend(entity_ids)
        self._node_of_id.update(
            ((side, entity_id), base + offset)
            for offset, entity_id in enumerate(entity_ids)
        )
        self._sides.extend(np.full(n_new, side, dtype=np.int8))
        self._side_counts[side] += n_new
        if self._delta is not None:
            self._delta.entities.update(range(base, base + n_new))
        zeros = np.zeros(n_new)
        for array in (
            self._blocks_per_entity,
            self._entity_cardinality,
            self._entity_inv_cardinality,
            self._entity_inv_size,
            self._degrees,
        ):
            array.extend(zeros)

    # -- removal / update ------------------------------------------------------
    def remove_entity(self, entity_id: str, side: int = 0) -> RetractionDelta:
        """Retract one entity, reversing every aggregate it contributed to.

        The entity leaves each of its blocks (adjusting ``|b|``, ``||b||``,
        the inverse weight vectors and the remaining members' per-entity
        aggregates in place, exactly undoing what its insertion added), its
        candidate pairs are tombstoned in the registry, and its node slot is
        marked dead.  Cost is proportional to the entity's candidate delta,
        like the insert it reverses.

        Returns
        -------
        RetractionDelta
            The dead node and the registry positions of its retracted pairs
            (the session uses these to evict the pairs from its online
            aggregates).

        Raises
        ------
        UnknownEntityError
            When no live entity with that id exists on that side; the index
            is left untouched.
        """
        if side not in (0, 1):
            raise ValueError("side must be 0 or 1")
        node = self._node_of_id.get((side, entity_id))
        if node is None:
            raise UnknownEntityError(entity_id, side)
        self._log_record({"op": "remove", "id": entity_id, "side": side})
        self.epoch += 1

        block_ids = np.array(
            self._indices[self._indptr[node] : self._indptr[node + 1]], copy=True
        )
        counterpart_parts: List[np.ndarray] = []
        for block_id in block_ids.tolist():
            counterparts = self._leave_block(block_id, node, side)
            if counterparts is not None:
                counterpart_parts.append(counterparts)

        if counterpart_parts:
            counterparts = np.unique(np.concatenate(counterpart_parts))
        else:
            counterparts = np.empty(0, dtype=np.int64)

        self._sync_pair_positions()
        pair_positions = np.empty(counterparts.size, dtype=np.int64)
        for offset, counterpart in enumerate(counterparts.tolist()):
            left, right = (
                (counterpart, node) if counterpart < node else (node, counterpart)
            )
            pair_positions[offset] = self._pair_position.pop(_pack_pair(left, right))
        if pair_positions.size:
            self._pair_alive[pair_positions] = False
            self._degrees[counterparts] -= 1.0
        self._num_live_pairs -= int(pair_positions.size)
        if self._delta is not None:
            self._delta.entities.add(node)
            self._delta.dead_pairs.extend(pair_positions.tolist())

        # the departing node's aggregates must land at exactly zero; assign
        # rather than subtract so float residue cannot accumulate in dead slots
        for array in (
            self._blocks_per_entity,
            self._entity_cardinality,
            self._entity_inv_cardinality,
            self._entity_inv_size,
            self._degrees,
        ):
            array[node] = 0.0

        del self._node_of_id[(side, entity_id)]
        self._sides[node] = -1
        self._side_counts[side] -= 1

        return RetractionDelta(
            node=node,
            entity_id=entity_id,
            side=side,
            block_ids=block_ids,
            counterparts=counterparts,
            pair_positions=pair_positions,
        )

    def update_entity(self, profile: EntityProfile, side: int = 0) -> UpdateDelta:
        """Correct an entity in place: retract the live version, insert the new.

        The new version enters under a *fresh* node id (slots are never
        reused), re-entering arrival order at the end — the canonical
        numbering treats an updated entity as the most recent arrival of its
        side.

        Raises
        ------
        UnknownEntityError
            When the entity is not currently live on ``side``.
        """
        if self._wal is not None and not self._wal_suspended:
            # one logical "update" record covers the inner remove + insert;
            # validate and tokenize first so the log never holds a failing op
            if side not in (0, 1):
                raise ValueError("side must be 0 or 1")
            if (side, profile.entity_id) not in self._node_of_id:
                raise UnknownEntityError(profile.entity_id, side)
            signatures = sorted(self.blocking.signatures_of(profile))
            self._log_record(
                {
                    "op": "update",
                    "id": profile.entity_id,
                    "side": side,
                    "sig": signatures,
                }
            )
            return self._apply_update(profile.entity_id, side, signatures)
        retraction = self.remove_entity(profile.entity_id, side=side)
        insert = self.add_entity(profile, side=side)
        return UpdateDelta(retraction=retraction, insert=insert)

    def _apply_update(
        self, entity_id: str, side: int, signatures: Sequence[str]
    ) -> UpdateDelta:
        """Update with pre-extracted signatures, without journaling the
        inner remove/insert (the WAL replay entry point)."""
        suspended = self._wal_suspended
        self._wal_suspended = True
        try:
            retraction = self.remove_entity(entity_id, side=side)
            insert = self._apply_insert(entity_id, side, signatures)
        finally:
            self._wal_suspended = suspended
        return UpdateDelta(retraction=retraction, insert=insert)

    # -- shared mutation helpers -----------------------------------------------
    def _check_side(self, side: int) -> None:
        if side not in (0, 1):
            raise ValueError("side must be 0 or 1")
        if side == 1 and not self.bilateral:
            raise ValueError("side=1 requires a bilateral index")

    def _register_entity(self, entity_id: str, side: int) -> int:
        node = self.num_slots
        if node >= MAX_NODE_ID:
            raise _node_id_overflow(node)
        self._entity_ids.append(entity_id)
        self._node_of_id[(side, entity_id)] = node
        self._sides.append(side)
        self._side_counts[side] += 1
        if self._delta is not None:
            self._delta.entities.add(node)
        for array in (
            self._blocks_per_entity,
            self._entity_cardinality,
            self._entity_inv_cardinality,
            self._entity_inv_size,
            self._degrees,
        ):
            array.append(0.0)
        return node

    def _register_tombstone(self) -> int:
        """Burn one node slot as already-removed (empty CSR row, side -1).

        Snapshot adoption uses this to reproduce another index's node space:
        slots its dead entities occupy must exist here too — with the same
        ids — so later WAL records referring to still-live nodes resolve
        identically.  A tombstone never matches any side, owns no blocks,
        and is skipped by every canonical view, exactly like a slot
        :meth:`remove_entity` has retired.
        """
        self.epoch += 1
        node = self.num_slots
        if node >= MAX_NODE_ID:
            raise _node_id_overflow(node)
        self._entity_ids.append("")
        self._sides.append(-1)
        for array in (
            self._blocks_per_entity,
            self._entity_cardinality,
            self._entity_inv_cardinality,
            self._entity_inv_size,
            self._degrees,
        ):
            array.append(0.0)
        self._indptr.append(len(self._indices))
        return node

    def _register_pairs(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Append canonical new pairs to the registry; returns their positions."""
        first_position = self.num_registered_pairs
        count = int(left.size)
        if count:
            self._pair_left.extend(left)
            self._pair_right.extend(right)
            self._pair_alive.extend(np.ones(count, dtype=np.bool_))
            self._pair_keys.extend(pack_pair_keys(left, right))
            # np.add.at (not fancy-indexed +=) — left/right may repeat nodes,
            # and the cost must stay O(count), not O(num_slots)
            degrees = self._degrees.view()
            np.add.at(degrees, left, 1.0)
            np.add.at(degrees, right, 1.0)
            self._num_live_pairs += count
        return np.arange(first_position, first_position + count, dtype=np.int64)

    def _sync_pair_positions(self) -> None:
        """Merge registry entries appended since the last sync into the
        packed-key -> position dict removals look pairs up in.

        A pair retracted and later re-registered appears twice in the
        registry; positions ascend within the unsynced tail, so the dict
        lands on the newest (live) position.  Amortised O(1) per pair ever
        registered.
        """
        total = self.num_registered_pairs
        if self._pair_synced == total:
            return
        tail = slice(self._pair_synced, total)
        self._pair_position.update(
            zip(self._pair_keys.view()[tail].tolist(), range(self._pair_synced, total))
        )
        self._pair_synced = total

    def _create_block(self, signature: str) -> int:
        block_id = len(self._block_keys)
        self._block_ids[signature] = block_id
        self._block_keys.append(signature)
        self._members_first.append([])
        self._members_second.append([])
        self._block_sizes.append(0)
        self._block_cardinalities.append(0)
        self._inverse_block_cardinalities.append(1.0)
        self._inverse_block_sizes.append(1.0)
        if self._delta is not None:
            self._delta.blocks.add(block_id)
        return block_id

    def _store_block_state(self, block_id: int, size: int, cardinality: int) -> None:
        self._block_sizes[block_id] = size
        self._block_cardinalities[block_id] = cardinality
        self._inverse_block_cardinalities[block_id] = 1.0 / max(cardinality, 1)
        self._inverse_block_sizes[block_id] = 1.0 / max(size, 1)

    def _join_block(self, block_id: int, node: int, side: int) -> Optional[np.ndarray]:
        """Add ``node`` to a block, updating every affected aggregate.

        Returns the node ids the new entity is compared against within this
        block (``None`` when the block spawns no new comparison).
        """
        tracker = self._delta
        if tracker is not None:
            tracker.blocks.add(block_id)
        first = self._members_first[block_id]
        second = self._members_second[block_id]
        old_size = len(first) + len(second)
        old_cardinality = int(self._block_cardinalities[block_id])
        if self.bilateral:
            counterpart_list = second if side == 0 else first
            new_cardinality = (
                (len(first) + (side == 0)) * (len(second) + (side == 1))
            )
        else:
            counterpart_list = first
            members = old_size + 1
            new_cardinality = members * (members - 1) // 2
        new_size = old_size + 1
        delta_cardinality = new_cardinality - old_cardinality
        self.total_cardinality += delta_cardinality

        # Adjust the aggregates of the block's existing members.  Both
        # branches are O(|b|); the arrays below are views into the growable
        # buffers, so the updates land in place.
        blocks_per_entity = self._blocks_per_entity.view()
        entity_cardinality = self._entity_cardinality.view()
        entity_inv_cardinality = self._entity_inv_cardinality.view()
        entity_inv_size = self._entity_inv_size.view()
        if old_cardinality > 0:
            existing = np.fromiter(
                first + second, dtype=np.int64, count=old_size
            )
            if tracker is not None:
                tracker.entities.update(existing.tolist())
            entity_cardinality[existing] += delta_cardinality
            entity_inv_cardinality[existing] += (
                1.0 / new_cardinality - 1.0 / old_cardinality
            )
            entity_inv_size[existing] += 1.0 / new_size - 1.0 / old_size
            self.total_block_assignments += 1
        elif new_cardinality > 0:
            # the block just started spawning comparisons: it now counts
            # towards |B|, |B_i| and the inverse sums of all its members
            existing = np.fromiter(first + second, dtype=np.int64, count=old_size)
            if tracker is not None:
                tracker.entities.update(existing.tolist())
            blocks_per_entity[existing] += 1.0
            entity_cardinality[existing] += new_cardinality
            entity_inv_cardinality[existing] += 1.0 / new_cardinality
            entity_inv_size[existing] += 1.0 / new_size
            self.num_nonempty_blocks += 1
            self.total_block_assignments += new_size

        if new_cardinality > 0:
            blocks_per_entity[node] += 1.0
            entity_cardinality[node] += new_cardinality
            entity_inv_cardinality[node] += 1.0 / new_cardinality
            entity_inv_size[node] += 1.0 / new_size

        counterparts = (
            np.fromiter(counterpart_list, dtype=np.int64, count=len(counterpart_list))
            if counterpart_list
            else None
        )

        if self.bilateral and side == 1:
            second.append(node)
        else:
            first.append(node)
        self._store_block_state(block_id, new_size, new_cardinality)
        return counterparts

    def _leave_block(self, block_id: int, node: int, side: int) -> Optional[np.ndarray]:
        """Remove ``node`` from a block, reversing every affected aggregate.

        The exact inverse of :meth:`_join_block`: the remaining members'
        per-entity aggregates move from the old block state to the new one,
        and a block dropping to zero cardinality stops counting towards
        ``|B|``, ``|B_i|``, the inverse sums and the assignment total.
        Returns the node ids the departing entity was compared against
        within this block (each is one retracted pair candidate).
        """
        tracker = self._delta
        if tracker is not None:
            tracker.blocks.add(block_id)
        first = self._members_first[block_id]
        second = self._members_second[block_id]
        old_size = len(first) + len(second)
        old_cardinality = int(self._block_cardinalities[block_id])

        (second if (self.bilateral and side == 1) else first).remove(node)
        new_size = old_size - 1
        if self.bilateral:
            counterpart_list = second if side == 0 else first
            new_cardinality = len(first) * len(second)
        else:
            counterpart_list = first
            new_cardinality = new_size * (new_size - 1) // 2
        delta_cardinality = new_cardinality - old_cardinality
        self.total_cardinality += delta_cardinality

        blocks_per_entity = self._blocks_per_entity.view()
        entity_cardinality = self._entity_cardinality.view()
        entity_inv_cardinality = self._entity_inv_cardinality.view()
        entity_inv_size = self._entity_inv_size.view()
        if old_cardinality > 0:
            remaining = np.fromiter(first + second, dtype=np.int64, count=new_size)
            if tracker is not None:
                tracker.entities.update(remaining.tolist())
            if new_cardinality > 0:
                entity_cardinality[remaining] += delta_cardinality
                entity_inv_cardinality[remaining] += (
                    1.0 / new_cardinality - 1.0 / old_cardinality
                )
                entity_inv_size[remaining] += 1.0 / new_size - 1.0 / old_size
                self.total_block_assignments -= 1
            else:
                # the block stopped spawning comparisons: it no longer counts
                # towards |B|, |B_i| or the inverse sums of its members
                blocks_per_entity[remaining] -= 1.0
                entity_cardinality[remaining] -= old_cardinality
                entity_inv_cardinality[remaining] -= 1.0 / old_cardinality
                entity_inv_size[remaining] -= 1.0 / old_size
                self.num_nonempty_blocks -= 1
                self.total_block_assignments -= old_size
            # the departing node's own contribution (zeroed for good measure
            # by the caller once every block is processed)
            blocks_per_entity[node] -= 1.0
            entity_cardinality[node] -= old_cardinality
            entity_inv_cardinality[node] -= 1.0 / old_cardinality
            entity_inv_size[node] -= 1.0 / old_size

        counterparts = (
            np.fromiter(counterpart_list, dtype=np.int64, count=len(counterpart_list))
            if counterpart_list
            else None
        )
        self._store_block_state(block_id, new_size, new_cardinality)
        return counterparts

    # -- compaction ------------------------------------------------------------
    def compact(self) -> None:
        """Rebuild the index without tombstoned slots and retracted positions.

        Long-lived high-churn sessions grow monotonically: removed entities
        leave dead node slots (zeroed aggregate entries, orphaned CSR rows)
        and retracted pairs keep their registry positions.  ``compact()``
        rebuilds the index from its *live* entities — replaying their stored
        signatures through :meth:`add_entities_bulk`, one bulk load per side
        in arrival order — and adopts the rebuilt state in place:

        * every per-node array shrinks to the live entity count
          (``num_slots == num_entities``);
        * the pair registry holds exactly the live pairs
          (``num_registered_pairs == num_pairs``);
        * blocks whose members were all removed are dropped.

        The *canonical* view is unchanged: live entities keep their arrival
        order per side, so :meth:`canonical_node_ids`,
        :meth:`canonical_candidates` and :meth:`snapshot_blocks` — and with
        them the exact batch-equivalent finalisation — produce identical
        results before and after.  Raw node ids and registry positions are
        reassigned, which invalidates outstanding
        :class:`InsertDelta`/:class:`RetractionDelta` references *and* any
        per-position state held by a live :class:`MatchingSession` — the
        session detects this via :attr:`generation` and refuses stale
        operations; call :meth:`MatchingSession.compact` instead, which
        remaps its state.  An attached write-ahead log is retained and no
        record is written: compaction does not change the logical state.
        """
        wal = self._wal
        generation = self.generation + 1
        epoch = self.epoch + 1
        fresh = MutableBlockIndex(
            blocking=self.blocking, bilateral=self.bilateral, name=self.name
        )
        for side, entries in self._dump_live_entities().items():
            if entries:
                fresh._apply_bulk(entries, side)
        self.__dict__.update(fresh.__dict__)
        self._wal = wal
        self._wal_suspended = False
        self.generation = generation
        # raw node ids and registry positions were reassigned: any delta
        # tracker's dirty sets are meaningless, so force the next export
        # back to a full ship
        self.epoch = epoch
        self._delta = None

    def _dump_live_entities(self) -> Dict[int, List[Tuple[str, List[str]]]]:
        """Live entities per side, in arrival order, with stored signatures.

        Exactly the state :meth:`compact` replays; snapshots persist it so
        recovery rebuilds through the same bulk path.
        """
        sides = self._sides.view()
        indptr = self._indptr.view()
        indices = self._indices.view()
        block_keys = self._block_keys
        dump: Dict[int, List[Tuple[str, List[str]]]] = {}
        for side in (0, 1) if self.bilateral else (0,):
            live = np.flatnonzero(sides == side)
            dump[side] = [
                (
                    self._entity_ids[node],
                    [
                        block_keys[int(block)]
                        for block in indices[indptr[node] : indptr[node + 1]]
                    ],
                )
                for node in live.tolist()
            ]
        return dump

    # -- read-side structures --------------------------------------------------
    def csr(self) -> EntityBlockCSR:
        """The current entity x block incidence structure (zero-copy views).

        Rows of removed entities are left behind (their node ids never recur
        in a live candidate pair), so the structure is safe to intersect over
        any live pair but not a faithful census of live memberships.
        """
        return EntityBlockCSR(
            indptr=self._indptr.view(),
            indices=self._indices.view(),
            num_blocks=self.num_blocks,
        )

    def statistics(self) -> IncrementalStatistics:
        """A fresh statistics view over the index's current state."""
        return IncrementalStatistics(self)

    def candidate_set(self) -> CandidateSet:
        """All *live* distinct candidate pairs (copied arrays).

        Pairs are in registry order with retracted positions filtered out;
        node ids are raw streaming ids (see :meth:`canonical_node_ids` for
        the batch renumbering).
        """
        alive = self._pair_alive.view()
        return CandidateSet(
            self._pair_left.view()[alive],
            self._pair_right.view()[alive],
            self.index_space(),
        )

    def delta_candidate_set(self, delta: InsertDelta) -> CandidateSet:
        """The candidate pairs introduced by one insert, as a candidate set."""
        left = delta.counterparts.copy()
        right = np.full(left.size, delta.node, dtype=np.int64)
        return CandidateSet(left, right, self.index_space())

    def bulk_candidate_set(self, delta: BulkInsertDelta) -> CandidateSet:
        """The candidate pairs introduced by one bulk load, as a candidate set."""
        return CandidateSet(
            delta.pair_left.copy(), delta.pair_right.copy(), self.index_space()
        )

    def canonical_candidates(self, candidates: CandidateSet) -> CandidateSet:
        """Renumber a live candidate set into the compact batch node space.

        Every pair keeps its position; only the node ids change (and the
        left/right orientation is restored to canonical ``left < right`` in
        the batch numbering).  Probability arrays aligned with the input
        remain aligned with the output, which is how the exact finalisation
        applies batch pruning — budgets, per-node thresholds and packed-key
        tie-breaking included — without re-scoring.
        """
        canonical = self.canonical_node_ids()
        left = canonical[candidates.left]
        right = canonical[candidates.right]
        if left.size and (np.any(left < 0) or np.any(right < 0)):
            raise ValueError("candidate set references removed entities")
        return CandidateSet(
            np.minimum(left, right), np.maximum(left, right), self.index_space()
        )

    def snapshot_blocks(self) -> BlockCollection:
        """Materialise the comparison-spawning blocks as a batch collection.

        Node ids are the canonical batch ids (:meth:`canonical_node_ids`),
        so the snapshot matches what the batch pipeline (with
        purging/filtering disabled) builds from the live entities in arrival
        order — up to block order, which no downstream consumer depends on.
        """
        canonical = self.canonical_node_ids()
        blocks = []
        for block_id, key in enumerate(self._block_keys):
            if self._block_cardinalities[block_id] <= 0:
                continue
            blocks.append(
                Block(
                    key=key,
                    entities_first=sorted(
                        int(canonical[node]) for node in self._members_first[block_id]
                    ),
                    entities_second=sorted(
                        int(canonical[node]) for node in self._members_second[block_id]
                    ),
                )
            )
        return BlockCollection(blocks, self.index_space(), name=self.name)

    # -- delta shipping ---------------------------------------------------------
    def _spawning_members(
        self, block_ids: List[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flattened member lists + lengths for ``block_ids`` (ship layout)."""
        first_lists = [self._members_first[b] for b in block_ids]
        second_lists = [self._members_second[b] for b in block_ids]
        count = len(block_ids)
        first_counts = np.fromiter(
            (len(m) for m in first_lists), dtype=np.int64, count=count
        )
        second_counts = np.fromiter(
            (len(m) for m in second_lists), dtype=np.int64, count=count
        )
        flat_first = np.fromiter(
            (node for members in first_lists for node in members),
            dtype=np.int64,
            count=int(first_counts.sum()),
        )
        flat_second = np.fromiter(
            (node for members in second_lists for node in members),
            dtype=np.int64,
            count=int(second_counts.sum()),
        )
        return flat_first, first_counts, flat_second, second_counts

    def _export_meta(self) -> dict:
        return {
            "bilateral": self.bilateral,
            "name": self.name,
            "num_slots": self.num_slots,
            "num_blocks": self.num_blocks,
            "num_nonempty_blocks": self.num_nonempty_blocks,
            "total_cardinality": self.total_cardinality,
            "side_counts": tuple(self._side_counts),
            "num_pairs": self.num_pairs,
            "epoch": self.epoch,
        }

    def export_state(self) -> dict:
        """The full read-state ship: every array a pinned view needs.

        Arrays are zero-copy views into the index — consume (copy or ship)
        them before the next mutation.  Member lists are shipped for the
        comparison-spawning blocks only; ``meta["block_keys"]`` carries
        every block key so deltas can address blocks by raw id later.
        """
        cardinalities = self._block_cardinalities.view()
        spawning = np.flatnonzero(cardinalities > 0)
        flat_first, first_counts, flat_second, second_counts = (
            self._spawning_members(spawning.tolist())
        )
        arrays = {
            "indptr": self._indptr.view(),
            "indices": self._indices.view(),
            "sides": self._sides.view(),
            "block_cardinality": cardinalities,
            "inv_block_cardinality": self._inverse_block_cardinalities.view(),
            "inv_block_size": self._inverse_block_sizes.view(),
            "blocks_per_entity": self._blocks_per_entity.view(),
            "entity_cardinality": self._entity_cardinality.view(),
            "entity_inv_cardinality": self._entity_inv_cardinality.view(),
            "entity_inv_size": self._entity_inv_size.view(),
            "pair_left": self._pair_left.view(),
            "pair_right": self._pair_right.view(),
            "pair_alive": self._pair_alive.view(),
            "member_blocks": spawning,
            "members_first": flat_first,
            "first_counts": first_counts,
            "members_second": flat_second,
            "second_counts": second_counts,
        }
        meta = self._export_meta()
        meta["kind"] = "full"
        meta["block_keys"] = list(self._block_keys)
        return {"arrays": arrays, "meta": meta}

    def enable_delta_tracking(self) -> int:
        """Start (or restart) recording dirty sets from the current epoch.

        Called by the read path right after a full ship: subsequent
        :meth:`export_delta` calls against the returned epoch ship only
        what changed.  Single consumer — re-enabling rebases the tracker.
        """
        if self._delta is None:
            self._delta = _DeltaTracker(self)
        else:
            self._delta.rebase(self)
        return self.epoch

    def export_delta(self, since_epoch: int) -> Optional[dict]:
        """Everything that changed since ``since_epoch``, or ``None``.

        Returns ``None`` when no tracker is armed or its base does not
        match ``since_epoch`` (stale reader, compaction, index replaced by
        checkpoint adoption) — the caller must fall back to
        :meth:`export_state`.  On success the tracker is rebased to the
        current epoch, so the returned delta must be consumed before the
        next mutation (arrays may be zero-copy views).

        The wire layout mirrors :meth:`export_state`: appended slot/CSR/
        pair-registry tails, the changed per-entity and per-block
        aggregates as sorted id + value arrays, tombstoned nodes and
        registry positions, and full member-list replacements for the
        dirty blocks.
        """
        tracker = self._delta
        if tracker is None or int(since_epoch) != tracker.base_epoch:
            return None
        sides = self._sides.view()
        base_slots = tracker.base_slots
        dirty_entities = np.fromiter(
            sorted(tracker.entities), dtype=np.int64, count=len(tracker.entities)
        )
        if dirty_entities.size:
            old = dirty_entities[dirty_entities < base_slots]
            tombstoned = old[sides[old] < 0]
        else:
            tombstoned = np.empty(0, dtype=np.int64)
        dirty_blocks = np.fromiter(
            sorted(tracker.blocks), dtype=np.int64, count=len(tracker.blocks)
        )
        flat_first, first_counts, flat_second, second_counts = (
            self._spawning_members(dirty_blocks.tolist())
        )
        dead = np.fromiter(
            sorted(p for p in tracker.dead_pairs if p < tracker.base_pairs),
            dtype=np.int64,
        )
        arrays = {
            "indptr_tail": self._indptr.view()[tracker.base_indptr :],
            "indices_tail": self._indices.view()[tracker.base_indices :],
            "sides_tail": sides[base_slots:],
            "tombstoned_nodes": tombstoned,
            "dirty_entities": dirty_entities,
            "dirty_blocks_per_entity": self._blocks_per_entity.view()[dirty_entities],
            "dirty_entity_cardinality": self._entity_cardinality.view()[
                dirty_entities
            ],
            "dirty_entity_inv_cardinality": self._entity_inv_cardinality.view()[
                dirty_entities
            ],
            "dirty_entity_inv_size": self._entity_inv_size.view()[dirty_entities],
            "dirty_blocks": dirty_blocks,
            "dirty_block_cardinality": self._block_cardinalities.view()[dirty_blocks],
            "dirty_inv_block_cardinality": self._inverse_block_cardinalities.view()[
                dirty_blocks
            ],
            "dirty_inv_block_size": self._inverse_block_sizes.view()[dirty_blocks],
            "pair_left_tail": self._pair_left.view()[tracker.base_pairs :],
            "pair_right_tail": self._pair_right.view()[tracker.base_pairs :],
            "pair_alive_tail": self._pair_alive.view()[tracker.base_pairs :],
            "dead_pair_positions": dead,
            "member_blocks": dirty_blocks,
            "members_first": flat_first,
            "first_counts": first_counts,
            "members_second": flat_second,
            "second_counts": second_counts,
        }
        meta = self._export_meta()
        meta["kind"] = "delta"
        meta["new_block_keys"] = self._block_keys[tracker.base_blocks :]
        meta["base_epoch"] = tracker.base_epoch
        tracker.rebase(self)
        return {"arrays": arrays, "meta": meta}
