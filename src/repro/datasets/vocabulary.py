"""Synthetic vocabularies for dataset generation.

The benchmark generators build entity profiles out of domain vocabularies
(brands, model words, descriptive terms, person names, title words).  Token
frequencies follow a Zipf-like distribution: a handful of tokens are shared
by a large fraction of the entities (producing the over-sized blocks that
Block Purging/Filtering must remove) while the long tail of rare tokens
produces the small, distinctive blocks the weighting schemes rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..utils.rng import SeedLike, make_rng

#: Frequent, low-information words injected into many profiles; these are the
#: signatures Block Purging is expected to eliminate.
COMMON_WORDS: Tuple[str, ...] = (
    "new", "black", "white", "pro", "plus", "series", "classic", "edition",
    "original", "standard", "premium", "digital", "compact", "ultra",
)

#: Seed words combined with numeric suffixes to make the synthetic vocabularies
#: readable in examples and debug output.
_BRAND_STEMS = (
    "acme", "globex", "initech", "umbrella", "stark", "wayne", "tyrell",
    "wonka", "hooli", "dunder", "cyberdyne", "oscorp", "massive", "aperture",
)
_NOUN_STEMS = (
    "phone", "laptop", "camera", "tablet", "drive", "router", "monitor",
    "printer", "speaker", "keyboard", "headset", "charger", "watch", "drone",
)
_TITLE_STEMS = (
    "shadow", "river", "night", "empire", "garden", "winter", "storm",
    "silent", "broken", "golden", "hidden", "burning", "frozen", "crimson",
)
_SURNAME_STEMS = (
    "smith", "garcia", "mueller", "rossi", "tanaka", "kumar", "novak",
    "jensen", "silva", "dubois", "keller", "moreno", "larsen", "petrov",
)


@dataclass(frozen=True)
class Vocabulary:
    """A domain vocabulary with Zipf-distributed token frequencies."""

    #: domain label ("products", "movies", "bibliographic", "people")
    domain: str
    #: distinctive tokens, ordered from most to least frequent
    tokens: Tuple[str, ...]
    #: Zipf exponent controlling how skewed the token frequencies are
    zipf_exponent: float = 1.2

    def sample_tokens(
        self, rng: np.random.Generator, count: int, with_common: bool = True
    ) -> List[str]:
        """Sample ``count`` tokens following the Zipf-like frequency profile."""
        if count <= 0:
            return []
        size = len(self.tokens)
        ranks = np.arange(1, size + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, self.zipf_exponent)
        weights /= weights.sum()
        indices = rng.choice(size, size=count, p=weights)
        sampled = [self.tokens[index] for index in indices]
        if with_common and count >= 2 and rng.random() < 0.5:
            sampled[rng.integers(0, count)] = COMMON_WORDS[
                rng.integers(0, len(COMMON_WORDS))
            ]
        return sampled


def _expand(stems: Sequence[str], size: int, prefix: str) -> Tuple[str, ...]:
    """Build a vocabulary of ``size`` tokens by suffixing the stems."""
    tokens: List[str] = []
    index = 0
    while len(tokens) < size:
        stem = stems[index % len(stems)]
        suffix = index // len(stems)
        tokens.append(stem if suffix == 0 else f"{stem}{prefix}{suffix}")
        index += 1
    return tuple(tokens)


def product_vocabulary(size: int = 3000) -> Vocabulary:
    """Vocabulary for product-matching datasets (AbtBuy, AmazonGP, Walmart)."""
    tokens = _expand(_BRAND_STEMS + _NOUN_STEMS, size, "x")
    return Vocabulary(domain="products", tokens=tokens, zipf_exponent=1.15)


def movie_vocabulary(size: int = 4000) -> Vocabulary:
    """Vocabulary for movie/TV datasets (ImdbTmdb, ImdbTvdb, TmdbTvdb, Movies)."""
    tokens = _expand(_TITLE_STEMS + _SURNAME_STEMS, size, "t")
    return Vocabulary(domain="movies", tokens=tokens, zipf_exponent=1.1)


def bibliographic_vocabulary(size: int = 5000) -> Vocabulary:
    """Vocabulary for bibliographic datasets (DblpAcm, ScholarDblp)."""
    tokens = _expand(_TITLE_STEMS + _SURNAME_STEMS + _NOUN_STEMS, size, "p")
    return Vocabulary(domain="bibliographic", tokens=tokens, zipf_exponent=1.05)


def people_vocabulary(size: int = 4000) -> Vocabulary:
    """Vocabulary for person/customer records (Dirty ER synthetic datasets)."""
    tokens = _expand(_SURNAME_STEMS + _BRAND_STEMS, size, "n")
    return Vocabulary(domain="people", tokens=tokens, zipf_exponent=1.1)


VOCABULARIES = {
    "products": product_vocabulary,
    "movies": movie_vocabulary,
    "bibliographic": bibliographic_vocabulary,
    "people": people_vocabulary,
}


def get_vocabulary(domain: str, size: int = 4000) -> Vocabulary:
    """Return the vocabulary factory output for ``domain``."""
    try:
        return VOCABULARIES[domain](size)
    except KeyError:
        known = ", ".join(sorted(VOCABULARIES))
        raise KeyError(f"unknown vocabulary domain {domain!r}; known: {known}") from None
