"""Synthetic Clean-Clean ER benchmark generation.

Each of the paper's 9 real-world benchmarks is emulated by a deterministic
generator driven by its :class:`~repro.datasets.registry.DatasetProfile`:

1. a pool of *base* entities is drawn from the domain vocabulary;
2. the first ``|D|`` base entities appear in both collections — verbatim in
   the first one and as a *corrupted copy* in the second one (typos, dropped
   tokens, missing attributes at the profile's corruption level);
3. the remaining entities of each collection are non-matching profiles drawn
   from the same vocabulary, so they still share frequent tokens with other
   entities and generate the superfluous comparisons meta-blocking must prune.

The corruption level controls how many duplicates end up sharing only a
single block, reproducing the high-/low-recall split of Figures 15/16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datamodel import EntityCollection, EntityProfile, GroundTruth
from ..utils.rng import SeedLike, make_rng
from .corruption import corrupt_attributes
from .registry import CLEAN_CLEAN_ORDER, DatasetProfile, get_profile
from .vocabulary import Vocabulary, get_vocabulary

#: Attribute layout per vocabulary domain: (attribute name, token count range).
_DOMAIN_SCHEMAS: Dict[str, Tuple[Tuple[str, Tuple[int, int]], ...]] = {
    "products": (
        ("name", (2, 4)),
        ("description", (2, 5)),
        ("manufacturer", (1, 1)),
        ("price", (1, 1)),
    ),
    "movies": (
        ("title", (2, 4)),
        ("cast", (2, 4)),
        ("genre", (1, 2)),
        ("year", (1, 1)),
    ),
    "bibliographic": (
        ("title", (3, 6)),
        ("authors", (2, 4)),
        ("venue", (1, 2)),
        ("year", (1, 1)),
    ),
    "people": (
        ("name", (1, 2)),
        ("surname", (1, 1)),
        ("address", (2, 4)),
        ("city", (1, 1)),
    ),
}


@dataclass
class CleanCleanDataset:
    """A generated Clean-Clean ER dataset: two collections plus ground truth."""

    name: str
    first: EntityCollection
    second: EntityCollection
    ground_truth: GroundTruth
    profile: DatasetProfile

    def summary(self) -> Dict[str, int]:
        """Size summary used in Table 1-style reports."""
        return {
            "entities_first": len(self.first),
            "entities_second": len(self.second),
            "duplicates": len(self.ground_truth),
        }


def _numeric_value(rng: np.random.Generator, attribute: str) -> str:
    """Generate a numeric-ish attribute value with deliberately low cardinality."""
    if attribute == "year":
        return str(int(rng.integers(1960, 2022)))
    if attribute == "price":
        return f"{int(rng.integers(1, 200)) * 5}.99"
    return str(int(rng.integers(0, 10_000)))


def _base_profile(
    entity_id: str,
    vocabulary: Vocabulary,
    profile: DatasetProfile,
    rng: np.random.Generator,
) -> EntityProfile:
    """Draw one base entity profile following the domain schema."""
    schema = _DOMAIN_SCHEMAS[profile.domain]
    attributes: Dict[str, str] = {}
    for attribute, (low, high) in schema:
        if attribute in ("year", "price", "phone"):
            attributes[attribute] = _numeric_value(rng, attribute)
            continue
        count = int(rng.integers(low, high + 1))
        tokens = vocabulary.sample_tokens(rng, count)
        attributes[attribute] = " ".join(tokens)
    return EntityProfile(entity_id=entity_id, attributes=attributes)


def _variant_profile(
    entity_id: str,
    base: EntityProfile,
    vocabulary: Vocabulary,
    profile: DatasetProfile,
    rng: np.random.Generator,
    replacement_pool: Sequence[str],
) -> EntityProfile:
    """Create a *hard negative*: a near-duplicate of ``base`` that is not a match.

    The variant shares most of the base's distinctive tokens (so it co-occurs
    with the base — and with the base's true duplicate — in many blocks) but
    differs in at least one token and in the numeric attribute, emulating
    sibling products / sequels / different editions that plague the real
    benchmarks and keep their precision well below 1.
    """
    from .corruption import CorruptionConfig

    variant_noise = CorruptionConfig(
        token_typo_probability=0.1,
        token_drop_probability=0.2,
        token_swap_probability=0.2,
        attribute_missing_probability=0.1,
    )
    attributes = corrupt_attributes(
        dict(base.attributes), variant_noise, rng, replacement_pool
    )
    # Force a visible difference: replace/refresh the numeric attribute and
    # append a new distinctive token to the first textual attribute.
    for attribute in attributes:
        if attribute in ("year", "price", "phone"):
            attributes[attribute] = _numeric_value(rng, attribute)
    textual = [name for name, value in attributes.items() if value and name not in ("year", "price", "phone")]
    if textual:
        target = textual[int(rng.integers(0, len(textual)))]
        extra = vocabulary.sample_tokens(rng, 1, with_common=False)
        attributes[target] = (attributes[target] + " " + extra[0]).strip()
    return EntityProfile(entity_id=entity_id, attributes=attributes)


def generate_clean_clean(
    profile: DatasetProfile,
    seed: SeedLike = 0,
    scale: Optional[float] = None,
) -> CleanCleanDataset:
    """Generate a Clean-Clean ER dataset from a benchmark profile.

    Parameters
    ----------
    profile:
        The benchmark profile (see :data:`repro.datasets.registry.CLEAN_CLEAN_PROFILES`).
    seed:
        Master seed; the same (profile, seed, scale) triple always produces
        the same dataset.
    scale:
        Optional override of the profile's generation scale.
    """
    rng = make_rng(seed)
    vocabulary = get_vocabulary(profile.domain, profile.vocabulary_size)
    size_first, size_second, duplicates = profile.generated_sizes(scale)

    replacement_pool = list(vocabulary.tokens[: min(200, len(vocabulary.tokens))])

    first_profiles: List[EntityProfile] = []
    second_profiles: List[EntityProfile] = []
    id_pairs: List[Tuple[str, str]] = []
    base_pool: List[EntityProfile] = []

    # Matching entities: original in the first collection, corrupted copy in
    # the second one.
    for index in range(duplicates):
        base = _base_profile(f"A{index}", vocabulary, profile, rng)
        first_profiles.append(base)
        base_pool.append(base)
        corrupted = corrupt_attributes(
            dict(base.attributes), profile.corruption, rng, replacement_pool
        )
        second_profiles.append(
            EntityProfile(entity_id=f"B{index}", attributes=corrupted)
        )
        id_pairs.append((f"A{index}", f"B{index}"))

    # Non-matching entities completing each collection.  A configurable share
    # of them are hard negatives: near-duplicate variants of existing base
    # entities that co-occur with true matches in many blocks.
    def _extra_profile(entity_id: str) -> EntityProfile:
        if base_pool and rng.random() < profile.hard_negative_fraction:
            base = base_pool[int(rng.integers(0, len(base_pool)))]
            return _variant_profile(
                entity_id, base, vocabulary, profile, rng, replacement_pool
            )
        fresh = _base_profile(entity_id, vocabulary, profile, rng)
        base_pool.append(fresh)
        return fresh

    for index in range(duplicates, size_first):
        first_profiles.append(_extra_profile(f"A{index}"))
    for index in range(duplicates, size_second):
        second_profiles.append(_extra_profile(f"B{index}"))

    first = EntityCollection(first_profiles, name=f"{profile.name}-1", is_clean=True)
    second = EntityCollection(second_profiles, name=f"{profile.name}-2", is_clean=True)
    ground_truth = GroundTruth.from_id_pairs(id_pairs, first, second)
    return CleanCleanDataset(
        name=profile.name,
        first=first,
        second=second,
        ground_truth=ground_truth,
        profile=profile,
    )


def load_benchmark(
    name: str, seed: SeedLike = 0, scale: Optional[float] = None
) -> CleanCleanDataset:
    """Generate the benchmark registered under ``name`` (e.g. ``"AbtBuy"``)."""
    return generate_clean_clean(get_profile(name), seed=seed, scale=scale)


def load_all_benchmarks(
    seed: SeedLike = 0,
    scale: Optional[float] = None,
    names: Optional[Sequence[str]] = None,
) -> List[CleanCleanDataset]:
    """Generate every benchmark (or the named subset) in the paper's order."""
    selected = list(names) if names is not None else list(CLEAN_CLEAN_ORDER)
    return [load_benchmark(name, seed=seed, scale=scale) for name in selected]
