"""Synthetic Dirty ER datasets for the scalability analysis.

The paper's scalability study (Section 5.5) uses 5 synthetic Dirty ER
datasets with 10,000–300,000 entities.  The generator below produces a single
"dirty" collection: a fraction of the entities are corrupted copies of other
entities in the *same* collection, so deduplication must find intra-collection
matches, exercising the unilateral-block code path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..datamodel import EntityCollection, EntityProfile, GroundTruth
from ..utils.rng import SeedLike, make_rng
from .benchmarks import _base_profile
from .corruption import corrupt_attributes
from .registry import DIRTY_ORDER, DatasetProfile, DirtyDatasetProfile, get_dirty_profile
from .vocabulary import get_vocabulary


@dataclass
class DirtyDataset:
    """A generated Dirty ER dataset: one collection plus its ground truth."""

    name: str
    collection: EntityCollection
    ground_truth: GroundTruth
    profile: DirtyDatasetProfile

    def summary(self) -> Dict[str, int]:
        """Size summary used in scalability reports."""
        return {
            "entities": len(self.collection),
            "duplicates": len(self.ground_truth),
        }


def generate_dirty(
    profile: DirtyDatasetProfile,
    seed: SeedLike = 0,
    scale: Optional[float] = None,
) -> DirtyDataset:
    """Generate a Dirty ER dataset from its profile.

    A ``duplicate_fraction`` share of the collection consists of corrupted
    copies of earlier entities; each copy forms one ground-truth pair with its
    original (duplicate clusters of size 2, as in Febrl-style generators).
    """
    rng = make_rng(seed)
    vocabulary = get_vocabulary("people", profile.vocabulary_size)
    total = profile.generated_size(scale)
    n_duplicates = int(round(profile.duplicate_fraction * total / (1.0 + profile.duplicate_fraction)))
    n_originals = total - n_duplicates
    if n_originals < 1 or n_duplicates < 1:
        raise ValueError("profile produces a degenerate dataset; increase the scale")

    # Reuse the Clean-Clean schema machinery with a people-flavoured profile.
    schema_profile = DatasetProfile(
        name=profile.name,
        domain="people",
        paper_entities_first=total,
        paper_entities_second=total,
        paper_duplicates=n_duplicates,
        paper_candidates=0,
        corruption=profile.corruption,
        tokens_per_entity=profile.tokens_per_entity,
        vocabulary_size=profile.vocabulary_size,
    )
    replacement_pool = list(vocabulary.tokens[: min(200, len(vocabulary.tokens))])

    profiles: List[EntityProfile] = []
    for index in range(n_originals):
        profiles.append(_base_profile(f"E{index}", vocabulary, schema_profile, rng))

    id_pairs: List[Tuple[str, str]] = []
    for copy_index in range(n_duplicates):
        original_index = int(rng.integers(0, n_originals))
        original = profiles[original_index]
        corrupted = corrupt_attributes(
            dict(original.attributes), profile.corruption, rng, replacement_pool
        )
        copy_id = f"E{n_originals + copy_index}"
        profiles.append(EntityProfile(entity_id=copy_id, attributes=corrupted))
        id_pairs.append((original.entity_id, copy_id))

    collection = EntityCollection(profiles, name=profile.name, is_clean=False)
    ground_truth = GroundTruth.from_id_pairs(id_pairs, collection)
    return DirtyDataset(
        name=profile.name,
        collection=collection,
        ground_truth=ground_truth,
        profile=profile,
    )


def load_dirty_dataset(
    name: str, seed: SeedLike = 0, scale: Optional[float] = None
) -> DirtyDataset:
    """Generate the Dirty ER dataset registered under ``name`` (e.g. ``"D100K"``)."""
    return generate_dirty(get_dirty_profile(name), seed=seed, scale=scale)


def load_all_dirty_datasets(
    seed: SeedLike = 0, scale: Optional[float] = None
) -> List[DirtyDataset]:
    """Generate the full D10K–D300K series in order of increasing size."""
    return [load_dirty_dataset(name, seed=seed, scale=scale) for name in DIRTY_ORDER]
