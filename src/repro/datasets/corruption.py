"""Value corruption for duplicate generation.

Duplicate profiles in the benchmark corpora are never exact copies: values
carry typos, dropped tokens, re-orderings, abbreviations and missing
attributes.  The corruption level is the main knob differentiating the
"easy" datasets (DblpAcm, ScholarDblp — duplicates share many blocks) from
the "hard" ones (AbtBuy, AmazonGP — many duplicates share one block or none),
which is exactly the distinction Figures 15/16 of the paper draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..utils.rng import make_rng

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class CorruptionConfig:
    """Controls how aggressively duplicate values are corrupted.

    Parameters
    ----------
    token_typo_probability:
        Chance of introducing a character-level typo in a token (which changes
        its blocking signature).
    token_drop_probability:
        Chance of dropping a token entirely.
    token_swap_probability:
        Chance of replacing a token with an unrelated one.
    attribute_missing_probability:
        Chance of blanking a whole attribute value in the duplicate.
    """

    token_typo_probability: float = 0.1
    token_drop_probability: float = 0.1
    token_swap_probability: float = 0.05
    attribute_missing_probability: float = 0.1

    def __post_init__(self) -> None:
        for name in (
            "token_typo_probability",
            "token_drop_probability",
            "token_swap_probability",
            "attribute_missing_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @classmethod
    def clean(cls) -> "CorruptionConfig":
        """Light corruption — duplicates share many signatures (DblpAcm-like)."""
        return cls(0.03, 0.03, 0.01, 0.02)

    @classmethod
    def moderate(cls) -> "CorruptionConfig":
        """Medium corruption (movie datasets)."""
        return cls(0.12, 0.15, 0.05, 0.10)

    @classmethod
    def noisy(cls) -> "CorruptionConfig":
        """Heavy corruption — many duplicates share a single block (AbtBuy-like)."""
        return cls(0.25, 0.35, 0.12, 0.25)


def introduce_typo(token: str, rng: np.random.Generator) -> str:
    """Return ``token`` with one random character substituted/inserted/deleted."""
    if not token:
        return token
    operation = rng.integers(0, 3)
    position = int(rng.integers(0, len(token)))
    replacement = _ALPHABET[rng.integers(0, len(_ALPHABET))]
    if operation == 0:  # substitute
        return token[:position] + replacement + token[position + 1 :]
    if operation == 1:  # insert
        return token[:position] + replacement + token[position:]
    if len(token) > 1:  # delete
        return token[:position] + token[position + 1 :]
    return token


def corrupt_tokens(
    tokens: Sequence[str],
    config: CorruptionConfig,
    rng: np.random.Generator,
    replacement_pool: Sequence[str] = (),
) -> List[str]:
    """Apply token-level corruption to a token sequence."""
    corrupted: List[str] = []
    for token in tokens:
        roll = rng.random()
        if roll < config.token_drop_probability:
            continue
        if roll < config.token_drop_probability + config.token_swap_probability and replacement_pool:
            corrupted.append(replacement_pool[rng.integers(0, len(replacement_pool))])
            continue
        if rng.random() < config.token_typo_probability:
            corrupted.append(introduce_typo(token, rng))
        else:
            corrupted.append(token)
    if not corrupted and tokens:
        # A duplicate must keep at least one token, otherwise it degenerates
        # into an empty profile that no blocking method can place anywhere.
        corrupted.append(tokens[int(rng.integers(0, len(tokens)))])
    return corrupted


def corrupt_attributes(
    attributes: Dict[str, str],
    config: CorruptionConfig,
    rng: np.random.Generator,
    replacement_pool: Sequence[str] = (),
) -> Dict[str, str]:
    """Corrupt a whole profile: per-attribute token corruption plus missing values.

    At least one attribute always survives so the duplicate remains blockable.
    """
    corrupted: Dict[str, str] = {}
    names = list(attributes)
    for name in names:
        value = attributes[name]
        if not value:
            corrupted[name] = value
            continue
        if rng.random() < config.attribute_missing_probability:
            corrupted[name] = ""
            continue
        tokens = value.split()
        corrupted[name] = " ".join(
            corrupt_tokens(tokens, config, rng, replacement_pool)
        )
    if all(not value for value in corrupted.values()) and names:
        survivor = names[int(rng.integers(0, len(names)))]
        corrupted[survivor] = attributes[survivor]
    return corrupted
