"""Dataset substrates: benchmark profiles, synthetic generators, CSV loaders."""

from .benchmarks import (
    CleanCleanDataset,
    generate_clean_clean,
    load_all_benchmarks,
    load_benchmark,
)
from .corruption import CorruptionConfig, corrupt_attributes, corrupt_tokens, introduce_typo
from .dirty import DirtyDataset, generate_dirty, load_all_dirty_datasets, load_dirty_dataset
from .loaders import (
    load_clean_clean_directory,
    load_dirty_directory,
    read_entity_csv,
    read_ground_truth_csv,
)
from .registry import (
    CLEAN_CLEAN_ORDER,
    CLEAN_CLEAN_PROFILES,
    DIRTY_ORDER,
    DIRTY_PROFILES,
    DatasetProfile,
    DirtyDatasetProfile,
    get_dirty_profile,
    get_profile,
)
from .vocabulary import Vocabulary, get_vocabulary

__all__ = [
    "CLEAN_CLEAN_ORDER",
    "CLEAN_CLEAN_PROFILES",
    "CleanCleanDataset",
    "CorruptionConfig",
    "DIRTY_ORDER",
    "DIRTY_PROFILES",
    "DatasetProfile",
    "DirtyDataset",
    "DirtyDatasetProfile",
    "Vocabulary",
    "corrupt_attributes",
    "corrupt_tokens",
    "generate_clean_clean",
    "generate_dirty",
    "get_dirty_profile",
    "get_profile",
    "get_vocabulary",
    "introduce_typo",
    "load_all_benchmarks",
    "load_all_dirty_datasets",
    "load_benchmark",
    "load_clean_clean_directory",
    "load_dirty_dataset",
    "load_dirty_directory",
    "read_entity_csv",
    "read_ground_truth_csv",
]
