"""Dataset registry: profiles of the paper's benchmark corpora.

The paper evaluates on 9 real-world Clean-Clean ER datasets (Table 1) and 5
synthetic Dirty ER datasets (D10K–D300K).  The original corpora cannot be
downloaded in this offline environment, so each is represented by a
:class:`DatasetProfile` capturing the characteristics the algorithms are
sensitive to — relative sizes, duplicate counts, domain/attribute schema,
and above all the corruption level, which determines how many duplicates
share only a single block (the property that separates the high-recall from
the low-recall datasets in Figures 15/16).

Generated datasets are scaled down by default (``scale``) so the full
experiment suite runs in minutes on a laptop; the paper's absolute sizes are
retained in the profile for reference and for the reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .corruption import CorruptionConfig


@dataclass(frozen=True)
class DatasetProfile:
    """Characteristics of one Clean-Clean ER benchmark dataset."""

    #: dataset name as used in the paper's tables
    name: str
    #: vocabulary domain ("products", "movies", "bibliographic", "people")
    domain: str
    #: entity counts and duplicate count reported in Table 1
    paper_entities_first: int
    paper_entities_second: int
    paper_duplicates: int
    #: candidate pairs reported in Table 1 (after purging + filtering)
    paper_candidates: int
    #: corruption level applied to the duplicate copies
    corruption: CorruptionConfig
    #: how many distinctive tokens a profile value carries on average
    tokens_per_entity: int = 6
    #: vocabulary size; smaller vocabularies create denser candidate sets
    vocabulary_size: int = 2500
    #: generation scale relative to the paper sizes
    scale: float = 0.2
    #: whether the paper observes recall > 0.9 for BLAST on this dataset
    high_recall: bool = True
    #: fraction of the non-matching entities generated as near-duplicate
    #: variants of existing entities (hard negatives); higher values lower the
    #: achievable precision, mirroring the noisier benchmarks
    hard_negative_fraction: float = 0.5

    def generated_sizes(self, scale: Optional[float] = None) -> Tuple[int, int, int]:
        """Return the (|E1|, |E2|, |D|) used for generation at ``scale``."""
        factor = self.scale if scale is None else scale
        if factor <= 0:
            raise ValueError("scale must be positive")
        first = max(80, int(round(self.paper_entities_first * factor)))
        second = max(80, int(round(self.paper_entities_second * factor)))
        duplicates = max(40, int(round(self.paper_duplicates * factor)))
        duplicates = min(duplicates, first, second)
        return first, second, duplicates


#: The 9 Clean-Clean ER benchmarks of Table 1, ordered as in the paper
#: (increasing number of candidate pairs).
CLEAN_CLEAN_PROFILES: Dict[str, DatasetProfile] = {
    "AbtBuy": DatasetProfile(
        name="AbtBuy",
        domain="products",
        paper_entities_first=1_100,
        paper_entities_second=1_100,
        paper_duplicates=1_100,
        paper_candidates=36_700,
        corruption=CorruptionConfig.noisy(),
        tokens_per_entity=7,
        vocabulary_size=1_800,
        scale=0.25,
        high_recall=False,
        hard_negative_fraction=0.65,
    ),
    "DblpAcm": DatasetProfile(
        name="DblpAcm",
        domain="bibliographic",
        paper_entities_first=2_600,
        paper_entities_second=2_300,
        paper_duplicates=2_200,
        paper_candidates=46_200,
        corruption=CorruptionConfig.clean(),
        tokens_per_entity=9,
        vocabulary_size=3_000,
        scale=0.12,
        high_recall=True,
        hard_negative_fraction=0.3,
    ),
    "ScholarDblp": DatasetProfile(
        name="ScholarDblp",
        domain="bibliographic",
        paper_entities_first=2_500,
        paper_entities_second=61_300,
        paper_duplicates=2_300,
        paper_candidates=83_300,
        corruption=CorruptionConfig.clean(),
        tokens_per_entity=8,
        vocabulary_size=4_000,
        scale=0.012,
        high_recall=True,
        hard_negative_fraction=0.5,
    ),
    "AmazonGP": DatasetProfile(
        name="AmazonGP",
        domain="products",
        paper_entities_first=1_400,
        paper_entities_second=3_300,
        paper_duplicates=1_300,
        paper_candidates=84_400,
        corruption=CorruptionConfig.noisy(),
        tokens_per_entity=7,
        vocabulary_size=1_600,
        scale=0.18,
        high_recall=False,
        hard_negative_fraction=0.7,
    ),
    "ImdbTmdb": DatasetProfile(
        name="ImdbTmdb",
        domain="movies",
        paper_entities_first=5_100,
        paper_entities_second=6_000,
        paper_duplicates=1_900,
        paper_candidates=109_400,
        corruption=CorruptionConfig.moderate(),
        tokens_per_entity=7,
        vocabulary_size=2_800,
        scale=0.07,
        high_recall=False,
        hard_negative_fraction=0.4,
    ),
    "ImdbTvdb": DatasetProfile(
        name="ImdbTvdb",
        domain="movies",
        paper_entities_first=5_100,
        paper_entities_second=7_800,
        paper_duplicates=1_100,
        paper_candidates=119_100,
        corruption=CorruptionConfig.moderate(),
        tokens_per_entity=6,
        vocabulary_size=2_600,
        scale=0.06,
        high_recall=False,
        hard_negative_fraction=0.6,
    ),
    "TmdbTvdb": DatasetProfile(
        name="TmdbTvdb",
        domain="movies",
        paper_entities_first=6_000,
        paper_entities_second=7_800,
        paper_duplicates=1_100,
        paper_candidates=198_600,
        corruption=CorruptionConfig.moderate(),
        tokens_per_entity=6,
        vocabulary_size=2_400,
        scale=0.055,
        high_recall=False,
        hard_negative_fraction=0.6,
    ),
    "Movies": DatasetProfile(
        name="Movies",
        domain="movies",
        paper_entities_first=27_600,
        paper_entities_second=23_100,
        paper_duplicates=22_800,
        paper_candidates=26_000_000,
        corruption=CorruptionConfig.clean(),
        tokens_per_entity=8,
        vocabulary_size=3_500,
        scale=0.018,
        high_recall=True,
        hard_negative_fraction=0.7,
    ),
    "WalmartAmazon": DatasetProfile(
        name="WalmartAmazon",
        domain="products",
        paper_entities_first=2_500,
        paper_entities_second=22_100,
        paper_duplicates=1_100,
        paper_candidates=27_400_000,
        corruption=CorruptionConfig.clean(),
        tokens_per_entity=7,
        vocabulary_size=1_500,
        scale=0.05,
        high_recall=True,
        hard_negative_fraction=0.85,
    ),
}


@dataclass(frozen=True)
class DirtyDatasetProfile:
    """Characteristics of one synthetic Dirty ER dataset (scalability study)."""

    name: str
    paper_entities: int
    #: fraction of the entities that are duplicates of another entity
    duplicate_fraction: float = 0.3
    corruption: CorruptionConfig = field(default_factory=CorruptionConfig.moderate)
    tokens_per_entity: int = 6
    vocabulary_size: int = 4_000
    scale: float = 0.05

    def generated_size(self, scale: Optional[float] = None) -> int:
        """Number of entities generated at ``scale``."""
        factor = self.scale if scale is None else scale
        if factor <= 0:
            raise ValueError("scale must be positive")
        return max(200, int(round(self.paper_entities * factor)))


#: The 5 synthetic Dirty ER datasets of the scalability analysis.
DIRTY_PROFILES: Dict[str, DirtyDatasetProfile] = {
    "D10K": DirtyDatasetProfile(name="D10K", paper_entities=10_000, scale=0.06),
    "D50K": DirtyDatasetProfile(name="D50K", paper_entities=50_000, scale=0.024),
    "D100K": DirtyDatasetProfile(name="D100K", paper_entities=100_000, scale=0.016),
    "D200K": DirtyDatasetProfile(name="D200K", paper_entities=200_000, scale=0.011),
    "D300K": DirtyDatasetProfile(name="D300K", paper_entities=300_000, scale=0.009),
}

#: Paper ordering of the Clean-Clean datasets (Table 1 / Tables 5 & 7 columns).
CLEAN_CLEAN_ORDER: List[str] = [
    "AbtBuy",
    "DblpAcm",
    "ScholarDblp",
    "AmazonGP",
    "ImdbTmdb",
    "ImdbTvdb",
    "TmdbTvdb",
    "Movies",
    "WalmartAmazon",
]

#: Paper ordering of the Dirty ER datasets (Figures 17 & 18).
DIRTY_ORDER: List[str] = ["D10K", "D50K", "D100K", "D200K", "D300K"]


def get_profile(name: str) -> DatasetProfile:
    """Return the Clean-Clean profile registered under ``name``."""
    try:
        return CLEAN_CLEAN_PROFILES[name]
    except KeyError:
        known = ", ".join(CLEAN_CLEAN_ORDER)
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None


def get_dirty_profile(name: str) -> DirtyDatasetProfile:
    """Return the Dirty ER profile registered under ``name``."""
    try:
        return DIRTY_PROFILES[name]
    except KeyError:
        known = ", ".join(DIRTY_ORDER)
        raise KeyError(f"unknown dirty dataset {name!r}; known datasets: {known}") from None
