"""Loaders for real benchmark corpora stored on disk.

When the original CSV corpora (e.g. from the Leipzig/Magellan repositories)
are available locally, these loaders build the same data-model objects the
synthetic generators produce, so the whole experiment harness runs unchanged
on real data.  Expected layout::

    <directory>/
        first.csv        # one entity per row, `id` column + attribute columns
        second.csv       # second collection (omit for Dirty ER)
        ground_truth.csv # columns: first_id, second_id

All files are plain UTF-8 CSV with a header row.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..datamodel import EntityCollection, GroundTruth, collection_from_dicts
from .benchmarks import CleanCleanDataset
from .dirty import DirtyDataset
from .registry import DatasetProfile, DirtyDatasetProfile, get_profile

PathLike = Union[str, Path]


def read_entity_csv(
    path: PathLike,
    id_field: str = "id",
    name: Optional[str] = None,
    is_clean: bool = True,
) -> EntityCollection:
    """Read an entity collection from a CSV file (one row per entity)."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"entity CSV not found: {path}")
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or id_field not in reader.fieldnames:
            raise ValueError(f"{path} must have a header containing the {id_field!r} column")
        rows: List[Dict[str, str]] = [dict(row) for row in reader]
    return collection_from_dicts(
        rows, id_field=id_field, name=name or path.stem, is_clean=is_clean
    )


def read_ground_truth_csv(
    path: PathLike,
    first: EntityCollection,
    second: Optional[EntityCollection] = None,
    first_column: str = "first_id",
    second_column: str = "second_id",
) -> GroundTruth:
    """Read duplicate id pairs from a CSV file."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"ground-truth CSV not found: {path}")
    id_pairs: List[Tuple[str, str]] = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or first_column not in reader.fieldnames:
            raise ValueError(
                f"{path} must have a header containing {first_column!r} and {second_column!r}"
            )
        for row in reader:
            id_pairs.append((str(row[first_column]), str(row[second_column])))
    return GroundTruth.from_id_pairs(id_pairs, first, second)


def load_clean_clean_directory(
    directory: PathLike,
    name: Optional[str] = None,
    profile_name: Optional[str] = None,
) -> CleanCleanDataset:
    """Load a real Clean-Clean ER dataset from ``directory``.

    Parameters
    ----------
    directory:
        Folder containing ``first.csv``, ``second.csv`` and ``ground_truth.csv``.
    name:
        Dataset label (defaults to the directory name).
    profile_name:
        Optional registry profile to attach (e.g. ``"AbtBuy"``) so reports can
        compare against the paper's published characteristics.
    """
    directory = Path(directory)
    label = name or directory.name
    first = read_entity_csv(directory / "first.csv", name=f"{label}-1")
    second = read_entity_csv(directory / "second.csv", name=f"{label}-2")
    ground_truth = read_ground_truth_csv(directory / "ground_truth.csv", first, second)
    profile = get_profile(profile_name) if profile_name else _fallback_profile(label, first, second, ground_truth)
    return CleanCleanDataset(
        name=label, first=first, second=second, ground_truth=ground_truth, profile=profile
    )


def load_dirty_directory(directory: PathLike, name: Optional[str] = None) -> DirtyDataset:
    """Load a real Dirty ER dataset (``first.csv`` + ``ground_truth.csv``)."""
    directory = Path(directory)
    label = name or directory.name
    collection = read_entity_csv(directory / "first.csv", name=label, is_clean=False)
    ground_truth = read_ground_truth_csv(directory / "ground_truth.csv", collection)
    profile = DirtyDatasetProfile(name=label, paper_entities=len(collection), scale=1.0)
    return DirtyDataset(
        name=label, collection=collection, ground_truth=ground_truth, profile=profile
    )


def _fallback_profile(
    label: str,
    first: EntityCollection,
    second: EntityCollection,
    ground_truth: GroundTruth,
) -> DatasetProfile:
    """Build a descriptive profile for datasets not present in the registry."""
    from .corruption import CorruptionConfig

    return DatasetProfile(
        name=label,
        domain="products",
        paper_entities_first=len(first),
        paper_entities_second=len(second),
        paper_duplicates=len(ground_truth),
        paper_candidates=0,
        corruption=CorruptionConfig.moderate(),
        scale=1.0,
    )
